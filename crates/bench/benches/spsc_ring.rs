//! Segment-handoff throughput: the hand-rolled SPSC ring
//! (`rtms_util::spsc`) vs `std::sync::mpsc::sync_channel` moving recycled
//! `TraceSegment` slabs between two threads — the exact transport pattern
//! `trace_segments_pipelined` runs (forward data path + reverse free
//! path), at both granularities the pipeline sees in practice:
//!
//! - `seg250ms` — a handful of large segments, where per-handoff overhead
//!   is amortized over thousands of events;
//! - `seg1ev` — one-event segments, where the handoff itself dominates
//!   and the two transports separate most clearly.
//!
//! Each iteration is one full pass: every segment crosses to a consumer
//! thread and comes back through the reverse path, so steady state moves
//! only pointers, never buffers. The transport (and its consumer thread)
//! lives across iterations — thread startup is never on the timed path.

use criterion::{criterion_group, criterion_main, Bencher, BenchmarkId, Criterion, Throughput};
use rtms_ros2::WorldBuilder;
use rtms_trace::{split_by_events, Nanos, TraceSegment};
use rtms_util::spsc;
use rtms_workloads::syn_app;
use std::hint::black_box;

/// Forward-ring capacity, matching `trace_segments_pipelined`.
const DATA_SLOTS: usize = 4;

/// One-event segments are capped here so a single pass stays in the
/// range the harness samples well.
const MAX_FINE_SEGMENTS: usize = 2048;

fn bench_ring_pass(b: &mut Bencher, segments: &[TraceSegment]) {
    let total = segments.len();
    let (mut data_tx, mut data_rx) = spsc::ring::<TraceSegment>(DATA_SLOTS);
    // Sized to hold every slab at once, so the consumer's hand-back can
    // never block on a full ring.
    let (mut free_tx, mut free_rx) = spsc::ring::<TraceSegment>(total.max(2 * DATA_SLOTS));
    let consumer = std::thread::spawn(move || {
        while let Some(segment) = data_rx.pop_wait() {
            black_box(segment.len());
            if free_tx.push(segment).is_err() {
                break;
            }
        }
    });
    let mut stash = segments.to_vec();
    let mut returned: Vec<TraceSegment> = Vec::with_capacity(total);
    b.iter(|| {
        for segment in stash.drain(..) {
            while let Some(back) = free_rx.try_pop() {
                returned.push(back);
            }
            assert!(data_tx.push(segment).is_ok(), "consumer died mid-pass");
        }
        while returned.len() < total {
            match free_rx.try_pop() {
                Some(back) => returned.push(back),
                None => std::thread::yield_now(),
            }
        }
        std::mem::swap(&mut stash, &mut returned);
    });
    drop(data_tx);
    consumer.join().expect("consumer thread");
}

/// The same round-trip over `std::sync::mpsc::sync_channel`, the standard
/// library's bounded channel, as the baseline the ring is judged against.
fn bench_channel_pass(b: &mut Bencher, segments: &[TraceSegment]) {
    let total = segments.len();
    let (data_tx, data_rx) = std::sync::mpsc::sync_channel::<TraceSegment>(DATA_SLOTS);
    let (free_tx, free_rx) =
        std::sync::mpsc::sync_channel::<TraceSegment>(total.max(2 * DATA_SLOTS));
    let consumer = std::thread::spawn(move || {
        while let Ok(segment) = data_rx.recv() {
            black_box(segment.len());
            if free_tx.send(segment).is_err() {
                break;
            }
        }
    });
    let mut stash = segments.to_vec();
    let mut returned: Vec<TraceSegment> = Vec::with_capacity(total);
    b.iter(|| {
        for segment in stash.drain(..) {
            while let Ok(back) = free_rx.try_recv() {
                returned.push(back);
            }
            assert!(data_tx.send(segment).is_ok(), "consumer died mid-pass");
        }
        while returned.len() < total {
            match free_rx.try_recv() {
                Ok(back) => returned.push(back),
                Err(_) => std::thread::yield_now(),
            }
        }
        std::mem::swap(&mut stash, &mut returned);
    });
    drop(data_tx);
    consumer.join().expect("consumer thread");
}

fn bench_spsc_ring(c: &mut Criterion) {
    // Pipeline-granularity segments: 2 s of SYN as 250 ms slabs.
    let mut world = WorldBuilder::new(4).seed(7).app(syn_app(1.0)).build().expect("SYN app");
    let mut coarse: Vec<TraceSegment> = Vec::new();
    world.trace_segments_sequential(Nanos::from_secs(2), Nanos::from_millis(250), |s| {
        coarse.push(std::mem::take(s));
    });

    // Handoff-bound segments: the same workload split one event apiece.
    let mut world = WorldBuilder::new(4).seed(7).app(syn_app(1.0)).build().expect("SYN app");
    let trace = world.trace_run(Nanos::from_millis(500));
    let mut fine = split_by_events(&trace, 1);
    fine.truncate(MAX_FINE_SEGMENTS);

    let mut group = c.benchmark_group("spsc_ring");
    for (granularity, segments) in [("seg250ms", &coarse), ("seg1ev", &fine)] {
        let events: u64 = segments.iter().map(|s| s.len() as u64).sum();
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::new("ring", granularity),
            segments.as_slice(),
            bench_ring_pass,
        );
        group.bench_with_input(
            BenchmarkId::new("sync_channel", granularity),
            segments.as_slice(),
            bench_channel_pass,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spsc_ring);
criterion_main!(benches);
