//! Cost of Algorithm 1 (callback extraction) and full model synthesis as a
//! function of trace length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtms_core::{extract_callbacks, synthesize};
use rtms_trace::{Nanos, Trace};
use rtms_workloads::case_study_world;
use std::hint::black_box;

fn traces() -> Vec<(u64, Trace)> {
    [2u64, 5, 10]
        .into_iter()
        .map(|secs| {
            let mut world = case_study_world(1, 1.0);
            (secs, world.trace_run(Nanos::from_secs(secs)))
        })
        .collect()
}

fn bench_alg1(c: &mut Criterion) {
    let inputs = traces();
    let mut group = c.benchmark_group("alg1");
    group.sample_size(10);
    for (secs, trace) in &inputs {
        group.bench_with_input(
            BenchmarkId::new("extract_one_node", format!("{secs}s")),
            trace,
            |b, t| {
                let pid = t.ros_pids()[2]; // a busy AVP node
                b.iter(|| black_box(extract_callbacks(pid, t)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("synthesize_full_model", format!("{secs}s")),
            trace,
            |b, t| b.iter(|| black_box(synthesize(t))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alg1);
criterion_main!(benches);
