//! Throughput of the eBPF substrate: RT-tracer probe dispatch and
//! kernel-tracer PID filtering — the in-kernel hot paths whose cost the
//! Sec. VI overhead numbers reflect.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rtms_ebpf::{map, FunctionArgs, FunctionCall, KernelTracer, Ros2RtTracer, SrcTsRef};
use rtms_trace::{
    CallbackId, Cpu, Nanos, Pid, Priority, SchedEvent, SourceTimestamp, ThreadState, Topic,
};
use std::hint::black_box;

fn bench_rt_dispatch(c: &mut Criterion) {
    let topic = Topic::plain("/bench");
    let calls: Vec<FunctionCall> = (0..1_000u64)
        .flat_map(|i| {
            let t = Nanos::from_micros(i);
            let pid = Pid::new(1);
            vec![
                FunctionCall::entry(t, pid, FunctionArgs::ExecuteSubscription),
                FunctionCall::entry(
                    t,
                    pid,
                    FunctionArgs::RmwTakeInt {
                        subscription: CallbackId::new(1),
                        topic: topic.clone(),
                        src_ts: SrcTsRef::pending(0x1000 + i),
                    },
                ),
                FunctionCall::exit(
                    t,
                    pid,
                    FunctionArgs::RmwTakeInt {
                        subscription: CallbackId::new(1),
                        topic: topic.clone(),
                        src_ts: SrcTsRef::resolved(0x1000 + i, SourceTimestamp::new(i)),
                    },
                ),
                FunctionCall::exit(t, pid, FunctionArgs::ExecuteSubscription),
            ]
        })
        .collect();

    let mut group = c.benchmark_group("ebpf");
    group.throughput(Throughput::Elements(calls.len() as u64));
    group.bench_function("rt_tracer_dispatch_4k_calls", |b| {
        b.iter(|| {
            let mut tracer = Ros2RtTracer::new().expect("programs verify");
            tracer.start();
            for call in &calls {
                tracer.on_function(black_box(call));
            }
            black_box(tracer.drain_segment().len())
        })
    });

    let events: Vec<SchedEvent> = (0..10_000u64)
        .map(|i| {
            SchedEvent::switch(
                Nanos::from_micros(i),
                Cpu::new((i % 12) as u16),
                Pid::new((i % 64) as u32),
                Priority::NORMAL,
                ThreadState::Runnable,
                Pid::new(((i + 1) % 64) as u32),
                Priority::NORMAL,
            )
        })
        .collect();
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("kernel_tracer_filter_10k_events", |b| {
        b.iter(|| {
            let filter = map::pid_filter_map();
            for p in 0..8u32 {
                filter.update(Pid::new(p), ()).expect("room");
            }
            let mut tracer = KernelTracer::new(Some(filter)).expect("program verifies");
            tracer.start();
            for ev in &events {
                tracer.on_sched_event(black_box(ev));
            }
            black_box(tracer.exported())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rt_dispatch);
criterion_main!(benches);
