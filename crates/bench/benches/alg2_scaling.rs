//! Cost of Algorithm 2 (execution-time measurement) as a function of the
//! scheduler-event stream length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtms_core::execution_time;
use rtms_trace::{Cpu, Nanos, Pid, Priority, SchedEvent, ThreadState};
use std::hint::black_box;

/// Builds a synthetic sched stream: the measured thread alternates 100 µs
/// on / 100 µs off with an interfering thread.
fn sched_stream(events: usize) -> Vec<SchedEvent> {
    let t = Pid::new(7);
    let other = Pid::new(8);
    (0..events)
        .map(|i| {
            let time = Nanos::from_micros(100 * (i as u64 + 1));
            let (prev, next) = if i % 2 == 0 { (t, other) } else { (other, t) };
            SchedEvent::switch(
                time,
                Cpu::new(0),
                prev,
                Priority::NORMAL,
                ThreadState::Runnable,
                next,
                Priority::NORMAL,
            )
        })
        .collect()
}

fn bench_alg2(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2");
    for n in [1_000usize, 10_000, 100_000] {
        let stream = sched_stream(n);
        let end = Nanos::from_micros(100 * (n as u64 - 10));
        group.bench_with_input(BenchmarkId::new("execution_time", n), &stream, |b, s| {
            b.iter(|| {
                black_box(execution_time(
                    Nanos::from_micros(50),
                    end,
                    Pid::new(7),
                    black_box(s),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alg2);
criterion_main!(benches);
