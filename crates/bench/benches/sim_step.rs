//! Bare scheduler stepping cost: the discrete-event engine alone, with
//! event recording off and no tracers attached, at 4 / 16 / 64 threads.
//!
//! This isolates the hot loop the indexed runqueue work targets — heap
//! pops, dirty-driven rebalance passes, and slice-check arming — from all
//! trace plumbing. Thread scripts mix three priority buckets, partial
//! affinities, and periodic sleeps, so preemption, round-robin slicing,
//! and wake-driven rebalances all stay on the measured path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtms_sched::{Affinity, PeriodicLoad, Simulator, SimulatorBuilder};
use rtms_trace::{Cpu, Nanos, Priority};
use std::hint::black_box;

const CPUS: usize = 4;
const HORIZON: Nanos = Nanos::from_millis(200);

fn machine(threads: usize) -> Simulator {
    let mut b = SimulatorBuilder::new(CPUS);
    for t in 0..threads {
        let affinity = if t % 4 == 3 {
            Affinity::only(Cpu::new((t % CPUS) as u16))
        } else {
            Affinity::all()
        };
        b.spawn(
            format!("t{t}"),
            Priority::new((t % 3) as i32),
            affinity,
            Box::new(PeriodicLoad::new(
                Nanos::from_millis(2 + (t % 5) as u64),
                Nanos::from_micros(50),
                Nanos::from_micros(900),
                t as u64,
            )),
        );
    }
    let mut sim = b.build();
    sim.set_recording(false);
    sim
}

fn bench_sim_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step");
    group.sample_size(20);
    for threads in [4usize, 16, 64] {
        // Pin the throughput denominator to the event count this machine
        // actually produces, so Criterion reports events/second.
        let events = {
            let mut sim = machine(threads);
            sim.run_until(HORIZON);
            sim.stats().events
        };
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::new("run_until", format!("{threads}thr")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut sim = machine(threads);
                    sim.run_until(HORIZON);
                    black_box(sim.switch_count())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim_step);
criterion_main!(benches);
