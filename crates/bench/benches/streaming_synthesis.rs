//! Batch vs streaming synthesis over the same pre-collected trace.
//!
//! `batch` synthesizes the monolithic trace in one call (which itself runs
//! on the shared-cursor session); `streaming/N` re-segments the trace into
//! N-event chunks and feeds them to a `SynthesisSession` — measuring what
//! the segment plumbing costs relative to one big feed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtms_core::{synthesize, SynthesisSession};
use rtms_ros2::WorldBuilder;
use rtms_trace::{split_by_events, Nanos};
use rtms_workloads::syn_app;
use std::hint::black_box;

fn bench_streaming(c: &mut Criterion) {
    let mut world = WorldBuilder::new(4).seed(7).app(syn_app(1.0)).build().expect("SYN app");
    let trace = world.trace_run(Nanos::from_secs(2));

    let mut group = c.benchmark_group("streaming_synthesis");
    group.bench_function("batch", |b| b.iter(|| black_box(synthesize(&trace))));
    for per_segment in [256usize, 4096] {
        let segments = split_by_events(&trace, per_segment);
        group.bench_with_input(
            BenchmarkId::new("streaming", per_segment),
            &segments,
            |b, segments| {
                b.iter(|| {
                    let mut session = SynthesisSession::new();
                    for segment in segments {
                        session.feed_segment(segment);
                    }
                    black_box(session.model())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
