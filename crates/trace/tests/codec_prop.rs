//! Property-based tests of the binary trace codec and the segment-file
//! container (`docs/TRACE_FORMAT.md`).
//!
//! The codec promises more than "decoding undoes encoding": re-encoding
//! a decoded segment reproduces the original bytes exactly, decoded
//! topics share the dictionary's `Arc` allocations instead of copying
//! strings, any re-segmentation of a run round-trips through a segment
//! file unchanged, and the on-disk record order of a time-sorted segment
//! *is* the merged walk order (so replaying a file needs no re-sort).

use proptest::prelude::*;
use rtms_trace::codec::{decode_dict_entries, decode_segment, decode_segment_events, encode_segment};
use rtms_trace::{
    split_by_events, CallbackId, CallbackKind, Cpu, EventSink, Nanos, OwnedSegmentEvent, Pid,
    Priority, RosEvent, RosPayload, SchedEvent, SegmentEvent, SegmentReader, SegmentWriter,
    SourceTimestamp, ThreadState, Topic, TopicInterner, Trace, TraceSegment,
};
use std::sync::Arc;

fn arb_nanos() -> impl Strategy<Value = Nanos> {
    (0u64..1_000_000_000_000).prop_map(Nanos::from_nanos)
}

fn arb_kind() -> impl Strategy<Value = CallbackKind> {
    prop_oneof![
        Just(CallbackKind::Timer),
        Just(CallbackKind::Subscriber),
        Just(CallbackKind::Service),
        Just(CallbackKind::Client),
    ]
}

/// A small topic pool (rather than fully random names) so segments
/// exercise dictionary hits as well as misses.
fn arb_topic() -> impl Strategy<Value = Topic> {
    prop_oneof![
        "[a-z/]{1,12}".prop_map(Topic::plain),
        "[a-z]{1,6}".prop_map(|s| Topic::service_request(format!("/{s}"))),
        "[a-z]{1,6}".prop_map(|s| Topic::service_response(format!("/{s}"))),
    ]
}

/// Every `RosPayload` variant, including the service-call trio the
/// data-model suite leaves out.
fn arb_payload() -> impl Strategy<Value = RosPayload> {
    prop_oneof![
        "[a-z_]{1,16}".prop_map(|node_name| RosPayload::NodeInit { node_name }),
        arb_kind().prop_map(|kind| RosPayload::CallbackStart { kind }),
        arb_kind().prop_map(|kind| RosPayload::CallbackEnd { kind }),
        any::<u64>().prop_map(|c| RosPayload::TimerCall { callback: CallbackId::new(c) }),
        (any::<u64>(), arb_topic(), any::<u64>()).prop_map(|(c, topic, ts)| RosPayload::TakeData {
            callback: CallbackId::new(c),
            topic,
            src_ts: SourceTimestamp::new(ts),
        }),
        (any::<u64>(), arb_topic(), any::<u64>()).prop_map(|(c, topic, ts)| {
            RosPayload::TakeRequest {
                callback: CallbackId::new(c),
                topic,
                src_ts: SourceTimestamp::new(ts),
            }
        }),
        (any::<u64>(), arb_topic(), any::<u64>()).prop_map(|(c, topic, ts)| RosPayload::TakeResponse {
            callback: CallbackId::new(c),
            topic,
            src_ts: SourceTimestamp::new(ts),
        }),
        Just(RosPayload::SyncSubscribe),
        any::<bool>().prop_map(|d| RosPayload::ClientDispatch { will_dispatch: d }),
        (arb_topic(), any::<u64>()).prop_map(|(topic, ts)| RosPayload::DdsWrite {
            topic,
            src_ts: SourceTimestamp::new(ts)
        }),
    ]
}

fn arb_ros_event() -> impl Strategy<Value = RosEvent> {
    (arb_nanos(), 1u32..64, arb_payload())
        .prop_map(|(time, pid, payload)| RosEvent::new(time, Pid::new(pid), payload))
}

fn arb_sched_event() -> impl Strategy<Value = SchedEvent> {
    (arb_nanos(), 0u16..8, 0u32..64, 0u32..64, any::<bool>()).prop_map(
        |(time, cpu, prev, next, runnable)| {
            SchedEvent::switch(
                time,
                Cpu::new(cpu),
                Pid::new(prev),
                Priority::NORMAL,
                if runnable { ThreadState::Runnable } else { ThreadState::Sleeping },
                Pid::new(next),
                Priority::NORMAL,
            )
        },
    )
}

/// A segment with both streams in arbitrary (not necessarily sorted)
/// insertion order — the codec must preserve exactly what it was given.
fn arb_segment() -> impl Strategy<Value = TraceSegment> {
    (
        0usize..1000,
        proptest::collection::vec(arb_ros_event(), 0..40),
        proptest::collection::vec(arb_sched_event(), 0..40),
    )
        .prop_map(|(index, ros, sched)| {
            let mut s = TraceSegment::with_index(index);
            for e in ros {
                s.push_ros(e);
            }
            for e in sched {
                s.push_sched(e);
            }
            s
        })
}

/// Encodes `segment` with a fresh interner and returns the segment
/// payload plus the dictionary entries it interned.
fn encode_fresh(segment: &TraceSegment) -> (Vec<u8>, Vec<Arc<str>>) {
    let mut interner = TopicInterner::new();
    let mut payload = Vec::new();
    encode_segment(segment, &mut interner, &mut payload);
    (payload, interner.entries().to_vec())
}

fn assert_segments_equal(a: &TraceSegment, b: &TraceSegment) {
    assert_eq!(a.index(), b.index());
    assert_eq!(a.ros_events(), b.ros_events());
    assert_eq!(a.sched_events(), b.sched_events());
}

proptest! {
    /// decode(encode(s)) == s, for any segment, sorted or not.
    #[test]
    fn segment_round_trips(segment in arb_segment()) {
        let (payload, dict) = encode_fresh(&segment);
        let decoded = decode_segment(&payload, &dict).expect("decodes");
        assert_segments_equal(&segment, &decoded);
    }

    /// Re-encoding a decoded segment reproduces the original bytes and
    /// the original dictionary, exactly — the property that lets a file
    /// be rewritten (e.g. filtered or re-segmented) without drift.
    #[test]
    fn re_encode_is_byte_identical(segment in arb_segment()) {
        let (payload, dict) = encode_fresh(&segment);
        let decoded = decode_segment(&payload, &dict).expect("decodes");
        let (payload2, dict2) = encode_fresh(&decoded);
        prop_assert_eq!(payload, payload2);
        prop_assert_eq!(dict, dict2);
    }

    /// Decoded topic names are shared with the dictionary — one `Arc`
    /// per distinct name per file, not a string copy per event.
    #[test]
    fn decoded_topics_share_dictionary_allocations(segment in arb_segment()) {
        let (payload, dict) = encode_fresh(&segment);
        let decoded = decode_segment(&payload, &dict).expect("decodes");
        for e in decoded.ros_events() {
            let topic = match &e.payload {
                RosPayload::TakeData { topic, .. }
                | RosPayload::TakeRequest { topic, .. }
                | RosPayload::TakeResponse { topic, .. }
                | RosPayload::DdsWrite { topic, .. } => topic,
                _ => continue,
            };
            prop_assert!(
                dict.iter().any(|entry| Arc::ptr_eq(entry, topic.name_arc())),
                "decoded topic {:?} does not alias a dictionary entry",
                topic.name()
            );
        }
    }

    /// The dictionary itself round-trips through its frame encoding.
    #[test]
    fn dictionary_round_trips(segment in arb_segment()) {
        let (_, dict) = encode_fresh(&segment);
        let mut frame = Vec::new();
        rtms_trace::codec::encode_dict_entries(&dict, &mut frame);
        let mut back = Vec::new();
        decode_dict_entries(&frame, &mut back).expect("dict decodes");
        prop_assert_eq!(dict.len(), back.len());
        for (a, b) in dict.iter().zip(&back) {
            prop_assert_eq!(a.as_ref(), b.as_ref());
        }
    }

    /// Any re-segmentation of a run — down to one event per segment —
    /// survives a full write/read cycle through the container unchanged:
    /// same per-stream events, same segment indices.
    #[test]
    fn file_round_trips_across_resegmentation(
        ros in proptest::collection::vec(arb_ros_event(), 0..60),
        sched in proptest::collection::vec(arb_sched_event(), 0..60),
        per_segment in 1usize..8,
    ) {
        let mut trace = Trace::new();
        for e in &ros { trace.push_ros(e.clone()); }
        for e in &sched { trace.push_sched(e.clone()); }
        let segments = split_by_events(&trace, per_segment);

        let mut writer = SegmentWriter::new(Vec::new()).expect("header");
        for s in &segments {
            writer.write_segment(s).expect("encode");
        }
        let (file, stats) = writer.finish().expect("finish");
        prop_assert_eq!(stats.segments, segments.len());

        let mut reader = SegmentReader::new(file.as_slice()).expect("header");
        let mut back = Vec::new();
        let mut scratch = TraceSegment::new();
        while reader.read_segment_into(&mut scratch).expect("decode") {
            back.push(scratch.clone());
        }
        prop_assert_eq!(back.len(), segments.len());
        for (a, b) in segments.iter().zip(&back) {
            assert_segments_equal(a, b);
        }
    }

    /// For a time-sorted segment the on-disk record order *is* the
    /// merged-cursor walk order — including the equal-timestamp rule
    /// (each stream stable, ROS2 before scheduler on cross-stream ties).
    /// Replaying a file therefore feeds synthesis in exactly the order a
    /// live walk would, with no re-sort.
    #[test]
    fn on_disk_order_is_the_merged_walk_order(
        ros in proptest::collection::vec(arb_ros_event(), 0..40),
        sched in proptest::collection::vec(arb_sched_event(), 0..40),
        // Few distinct timestamps => many equal-timestamp collisions.
        squash in 1u64..5,
    ) {
        let mut segment = TraceSegment::new();
        for mut e in ros {
            e.time = Nanos::from_nanos(e.time.as_nanos() % squash);
            segment.push_ros(e);
        }
        for mut e in sched {
            e.time = Nanos::from_nanos(e.time.as_nanos() % squash);
            segment.push_sched(e);
        }
        segment.sort_by_time();

        let walked: Vec<OwnedSegmentEvent> = segment
            .cursor()
            .map(|e| match e {
                SegmentEvent::Ros(r) => OwnedSegmentEvent::Ros(r.clone()),
                SegmentEvent::Sched(s) => OwnedSegmentEvent::Sched(s.clone()),
            })
            .collect();

        let (payload, dict) = encode_fresh(&segment);
        let mut on_disk = Vec::new();
        decode_segment_events(&payload, &dict, |e| on_disk.push(e)).expect("decodes");
        prop_assert_eq!(on_disk, walked);
    }

    /// The streaming decoder and the batch decoder agree event for event.
    #[test]
    fn streaming_and_batch_decode_agree(segment in arb_segment()) {
        let (payload, dict) = encode_fresh(&segment);
        let batch = decode_segment(&payload, &dict).expect("decodes");

        let mut ros = Vec::new();
        let mut sched = Vec::new();
        let (index, total) = decode_segment_events(&payload, &dict, |e| match e {
            OwnedSegmentEvent::Ros(e) => ros.push(e),
            OwnedSegmentEvent::Sched(e) => sched.push(e),
        })
        .expect("decodes");
        prop_assert_eq!(index, segment.index());
        prop_assert_eq!(total, segment.len());
        prop_assert_eq!(ros.as_slice(), batch.ros_events());
        prop_assert_eq!(sched.as_slice(), batch.sched_events());
    }
}
