//! Property-based tests of the trace data model.

use proptest::prelude::*;
use rtms_trace::{
    split_by_events, CallbackId, CallbackKind, Cpu, Nanos, OwnedSegmentEvent, Pid, Priority,
    RosEvent, RosPayload, SchedEvent, SegmentEvent, SourceTimestamp, ThreadState, Topic, Trace,
};

fn arb_nanos() -> impl Strategy<Value = Nanos> {
    (0u64..1_000_000_000_000).prop_map(Nanos::from_nanos)
}

fn arb_kind() -> impl Strategy<Value = CallbackKind> {
    prop_oneof![
        Just(CallbackKind::Timer),
        Just(CallbackKind::Subscriber),
        Just(CallbackKind::Service),
        Just(CallbackKind::Client),
    ]
}

fn arb_topic() -> impl Strategy<Value = Topic> {
    prop_oneof![
        "[a-z/]{1,12}".prop_map(Topic::plain),
        "[a-z]{1,8}".prop_map(|s| Topic::service_request(format!("/{s}"))),
        "[a-z]{1,8}".prop_map(|s| Topic::service_response(format!("/{s}"))),
    ]
}

fn arb_payload() -> impl Strategy<Value = RosPayload> {
    prop_oneof![
        "[a-z_]{1,16}".prop_map(|node_name| RosPayload::NodeInit { node_name }),
        arb_kind().prop_map(|kind| RosPayload::CallbackStart { kind }),
        arb_kind().prop_map(|kind| RosPayload::CallbackEnd { kind }),
        any::<u64>().prop_map(|c| RosPayload::TimerCall { callback: CallbackId::new(c) }),
        (any::<u64>(), arb_topic(), any::<u64>()).prop_map(|(c, topic, ts)| {
            RosPayload::TakeData {
                callback: CallbackId::new(c),
                topic,
                src_ts: SourceTimestamp::new(ts),
            }
        }),
        Just(RosPayload::SyncSubscribe),
        any::<bool>().prop_map(|d| RosPayload::ClientDispatch { will_dispatch: d }),
        (arb_topic(), any::<u64>()).prop_map(|(topic, ts)| RosPayload::DdsWrite {
            topic,
            src_ts: SourceTimestamp::new(ts)
        }),
    ]
}

fn arb_ros_event() -> impl Strategy<Value = RosEvent> {
    (arb_nanos(), 1u32..64, arb_payload())
        .prop_map(|(time, pid, payload)| RosEvent::new(time, Pid::new(pid), payload))
}

fn arb_sched_event() -> impl Strategy<Value = SchedEvent> {
    (arb_nanos(), 0u16..8, 0u32..64, 0u32..64, any::<bool>()).prop_map(
        |(time, cpu, prev, next, runnable)| {
            SchedEvent::switch(
                time,
                Cpu::new(cpu),
                Pid::new(prev),
                Priority::NORMAL,
                if runnable { ThreadState::Runnable } else { ThreadState::Sleeping },
                Pid::new(next),
                Priority::NORMAL,
            )
        },
    )
}

/// Clones a by-ref cursor event into the owned representation, so walks
/// over different segmentations (and over by-ref vs owned cursors)
/// compare exactly.
fn to_owned_event(e: SegmentEvent<'_>) -> OwnedSegmentEvent {
    match e {
        SegmentEvent::Ros(r) => OwnedSegmentEvent::Ros(r.clone()),
        SegmentEvent::Sched(s) => OwnedSegmentEvent::Sched(s.clone()),
    }
}

proptest! {
    #[test]
    fn nanos_add_sub_round_trip(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let (x, y) = (Nanos::from_nanos(a), Nanos::from_nanos(b));
        prop_assert_eq!((x + y) - y, x);
        prop_assert_eq!(x.saturating_sub(y), Nanos::from_nanos(a.saturating_sub(b)));
    }

    #[test]
    fn nanos_min_max_consistent(a in any::<u64>(), b in any::<u64>()) {
        let (x, y) = (Nanos::from_nanos(a), Nanos::from_nanos(b));
        prop_assert_eq!(x.min(y).as_nanos(), a.min(b));
        prop_assert_eq!(x.max(y).as_nanos(), a.max(b));
        prop_assert!(x.min(y) <= x.max(y));
    }

    #[test]
    fn ros_event_serde_round_trip(ev in arb_ros_event()) {
        let json = serde_json::to_string(&ev).expect("serialize");
        let back: RosEvent = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(ev, back);
    }

    #[test]
    fn sched_event_serde_round_trip(ev in arb_sched_event()) {
        let json = serde_json::to_string(&ev).expect("serialize");
        let back: SchedEvent = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(ev, back);
    }

    #[test]
    fn trace_merge_preserves_events_and_order(
        evs_a in proptest::collection::vec(arb_ros_event(), 0..40),
        evs_b in proptest::collection::vec(arb_ros_event(), 0..40),
        sched in proptest::collection::vec(arb_sched_event(), 0..40),
    ) {
        let mut a = Trace::new();
        for e in &evs_a { a.push_ros(e.clone()); }
        for s in &sched { a.push_sched(s.clone()); }
        let mut b = Trace::new();
        for e in &evs_b { b.push_ros(e.clone()); }
        let (na, nb) = (a.len(), b.len());
        a.merge(b);
        prop_assert_eq!(a.len(), na + nb);
        // Chronological after merge.
        for w in a.ros_events().windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        for w in a.sched_events().windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn trace_json_round_trip(
        evs in proptest::collection::vec(arb_ros_event(), 0..20),
        sched in proptest::collection::vec(arb_sched_event(), 0..20),
    ) {
        let mut t = Trace::new();
        for e in evs { t.push_ros(e); }
        for s in sched { t.push_sched(s); }
        let back = Trace::from_json(&t.to_json().expect("ser")).expect("de");
        prop_assert_eq!(back, t);
    }

    #[test]
    fn ros_events_for_is_a_sorted_filter(
        evs in proptest::collection::vec(arb_ros_event(), 0..60),
        pid in 1u32..64,
    ) {
        let mut t = Trace::new();
        for e in &evs { t.push_ros(e.clone()); }
        let filtered = t.ros_events_for(Pid::new(pid));
        prop_assert_eq!(
            filtered.len(),
            evs.iter().filter(|e| e.pid == Pid::new(pid)).count()
        );
        for w in filtered.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn encoded_size_is_positive_and_bounded(ev in arb_ros_event()) {
        let size = ev.encoded_size();
        prop_assert!(size >= 16, "at least the header");
        prop_assert!(size <= 16 + 8 + 8 + 64, "at most the take record");
    }

    /// The merged walk's tie order is pinned: each stream stable in
    /// emission order, ROS2 before scheduler on cross-stream timestamp
    /// ties — and that order survives any re-segmentation, which is what
    /// lets an online consumer observe the same sequence however the run
    /// was cut into segments.
    #[test]
    fn cursor_tie_order_stable_across_resegmentation(
        evs in proptest::collection::vec(arb_ros_event(), 0..40),
        sched in proptest::collection::vec(arb_sched_event(), 0..40),
        // Few distinct timestamps => many equal-timestamp collisions.
        squash in 1u64..5,
        per_segment in 1usize..12,
    ) {
        let mut t = Trace::new();
        for mut e in evs {
            e.time = Nanos::from_nanos(e.time.as_nanos() % squash);
            t.push_ros(e);
        }
        for mut s in sched {
            s.time = Nanos::from_nanos(s.time.as_nanos() % squash);
            t.push_sched(s);
        }

        // Reference walk over the unsegmented trace.
        let reference: Vec<OwnedSegmentEvent> = t.cursor().map(to_owned_event).collect();

        // The walk is chronological; at a shared timestamp every ROS2
        // event precedes every scheduler event.
        for w in reference.windows(2) {
            prop_assert!(w[0].time() <= w[1].time());
            if w[0].time() == w[1].time() {
                prop_assert!(
                    matches!(w[0], OwnedSegmentEvent::Ros(_))
                        || !matches!(w[1], OwnedSegmentEvent::Ros(_)),
                    "a scheduler event must never precede a ROS2 event at the same timestamp"
                );
            }
        }

        // Re-segmentation at any granularity reproduces the identical
        // sequence, both via per-segment cursors and via the owned walk.
        let segments = split_by_events(&t, per_segment);
        let walked: Vec<OwnedSegmentEvent> = segments
            .iter()
            .flat_map(|s| s.cursor().map(to_owned_event).collect::<Vec<_>>())
            .collect();
        prop_assert_eq!(&walked, &reference);

        let owned: Vec<OwnedSegmentEvent> = segments
            .into_iter()
            .flat_map(|s| s.into_merged().collect::<Vec<_>>())
            .collect();
        prop_assert_eq!(&owned, &reference);
    }

    #[test]
    fn topic_suffix_never_collides_with_base(topic in arb_topic(), suffix in "[a-z0-9:]{1,10}") {
        let decorated = topic.with_suffix(&suffix);
        prop_assert_ne!(decorated.name(), topic.name());
        prop_assert_eq!(decorated.kind(), topic.kind());
        prop_assert!(decorated.name().starts_with(topic.name()));
    }
}
