//! Robustness of the segment-file reader against corrupt, truncated, and
//! adversarial input (`docs/TRACE_FORMAT.md`).
//!
//! The contract under test: a reader handed arbitrary bytes either
//! produces exactly the recorded events or returns a typed
//! [`CodecError`] — it never panics, never silently drops or invents
//! events, and never sizes an allocation from an unvalidated length
//! field. The suite walks *every* truncation point and *every* single-bit
//! flip of a real file rather than sampling a few.

use rtms_trace::{
    CallbackId, CallbackKind, CodecError, Cpu, EventSink, Nanos, Pid, Priority, RosEvent,
    RosPayload, SchedEvent, SegmentReader, SegmentWriter, SourceTimestamp, ThreadState, Topic,
    TraceSegment, SEGMENT_FILE_VERSION,
};

/// A small two-segment file with a meta frame, a shared-topic dictionary,
/// and both event streams populated.
fn sample_file() -> Vec<u8> {
    let mut writer = SegmentWriter::new(Vec::new()).expect("header");
    writer.set_meta("{\"origin\":\"corruption-suite\"}").expect("meta");
    for (i, base) in [(0usize, 0u64), (1, 1_000_000)] {
        let mut s = TraceSegment::with_index(i);
        s.push_ros(RosEvent::new(
            Nanos::from_nanos(base),
            Pid::new(7),
            RosPayload::NodeInit { node_name: format!("node{i}") },
        ));
        s.push_ros(RosEvent::new(
            Nanos::from_nanos(base + 10),
            Pid::new(7),
            RosPayload::CallbackStart { kind: CallbackKind::Subscriber },
        ));
        s.push_ros(RosEvent::new(
            Nanos::from_nanos(base + 20),
            Pid::new(7),
            RosPayload::TakeData {
                callback: CallbackId::new(41),
                topic: Topic::plain("/camera"),
                src_ts: SourceTimestamp::new(3 + i as u64),
            },
        ));
        s.push_ros(RosEvent::new(
            Nanos::from_nanos(base + 40),
            Pid::new(7),
            RosPayload::DdsWrite {
                topic: Topic::plain("/detections"),
                src_ts: SourceTimestamp::new(5 + i as u64),
            },
        ));
        s.push_ros(RosEvent::new(
            Nanos::from_nanos(base + 50),
            Pid::new(7),
            RosPayload::CallbackEnd { kind: CallbackKind::Subscriber },
        ));
        s.push_sched(SchedEvent::switch(
            Nanos::from_nanos(base + 15),
            Cpu::new(0),
            Pid::new(0),
            Priority::NORMAL,
            ThreadState::Runnable,
            Pid::new(7),
            Priority::NORMAL,
        ));
        writer.write_segment(&s).expect("segment");
    }
    let (file, stats) = writer.finish().expect("finish");
    assert_eq!(stats.segments, 2);
    file
}

/// Drains a reader over `bytes`, returning the decoded segments or the
/// first typed error. A panic anywhere in here fails the suite.
fn try_replay(bytes: &[u8]) -> Result<Vec<TraceSegment>, CodecError> {
    let mut reader = SegmentReader::new(bytes)?;
    let mut segments = Vec::new();
    let mut scratch = TraceSegment::new();
    while reader.read_segment_into(&mut scratch)? {
        segments.push(scratch.clone());
    }
    Ok(segments)
}

/// The streaming-decode surface must be exactly as robust as the batch
/// one; drive it over the same bytes.
fn try_replay_streaming(bytes: &[u8]) -> Result<usize, CodecError> {
    let mut reader = SegmentReader::new(bytes)?;
    let mut events = 0usize;
    while let Some((_, len)) = reader.next_segment_events(|_| {})? {
        events += len;
    }
    Ok(events)
}

#[test]
fn intact_file_replays_fully() {
    let file = sample_file();
    let segments = try_replay(&file).expect("intact file");
    assert_eq!(segments.len(), 2);
    assert_eq!(segments[0].len(), 6);
    assert_eq!(try_replay_streaming(&file).expect("intact file"), 12);
}

/// Every prefix of a valid file — a crash mid-write, a torn download —
/// decodes to a typed error or a clean (possibly shorter) result, on
/// both decode surfaces. No prefix may panic.
#[test]
fn every_truncation_point_is_handled() {
    let file = sample_file();
    let pristine = try_replay(&file).expect("intact file");
    // The sequential reader stops at the index frame and never consumes
    // the 16-byte trailer (that is the seekable reader's entry point), so
    // cuts inside the trailer still replay completely.
    let trailer_start = file.len() - 16;
    let mut rejected = 0usize;
    for cut in 0..file.len() {
        let prefix = &file[..cut];
        match try_replay(prefix) {
            Ok(segments) if cut >= trailer_start => assert_eq!(segments, pristine),
            // Any earlier cut must never pass for a complete file: the
            // index frame only exists past `trailer_start`.
            Ok(_) => panic!("prefix of {cut} bytes decoded as a complete file"),
            Err(
                CodecError::Truncated
                | CodecError::BadMagic
                | CodecError::BadVarint
                | CodecError::MissingIndex
                | CodecError::ChecksumMismatch
                | CodecError::BadCount { .. }
                | CodecError::BadLength { .. }
                | CodecError::Io(_),
            ) => rejected += 1,
            Err(other) => panic!("prefix of {cut} bytes: unexpected diagnosis {other}"),
        }
        assert_eq!(try_replay_streaming(prefix).is_ok(), cut >= trailer_start);
    }
    assert_eq!(rejected, trailer_start);
}

/// Every single-bit flip is either *detected* (typed error) or
/// *harmless* (the decoded events are identical — flips in the trailer,
/// which the sequential reader does not consume, and in the reserved
/// header padding). A flip must never silently alter what is decoded.
#[test]
fn every_single_bit_flip_is_detected_or_harmless() {
    let file = sample_file();
    let pristine = try_replay(&file).expect("intact file");
    let mut detected = 0usize;
    let mut harmless = 0usize;
    for byte in 0..file.len() {
        for bit in 0..8 {
            let mut mutated = file.clone();
            mutated[byte] ^= 1 << bit;
            match try_replay(&mutated) {
                Err(_) => detected += 1,
                Ok(segments) => {
                    assert_eq!(
                        segments, pristine,
                        "bit {bit} of byte {byte} flipped silently changed the decode"
                    );
                    harmless += 1;
                }
            }
        }
    }
    assert_eq!(detected + harmless, file.len() * 8);
    // Everything between the 12-byte header and the 16-byte trailer is
    // frame data, where the checksum makes every flip loud.
    let framed_bits = (file.len() - 12 - 16) * 8;
    assert!(
        detected >= framed_bits,
        "only {detected} of {framed_bits} framed bit flips were detected"
    );
}

/// A payload-byte flip inside a frame is diagnosed as a checksum
/// mismatch specifically — the pinned corruption diagnosis.
#[test]
fn payload_corruption_is_a_checksum_mismatch() {
    let mut file = sample_file();
    // Byte 17 sits in the first frame's payload (12-byte header, then
    // kind + 4 length bytes).
    file[17] ^= 0x40;
    assert!(matches!(try_replay(&file), Err(CodecError::ChecksumMismatch)));
}

#[test]
fn wrong_magic_is_rejected() {
    let mut file = sample_file();
    file[0] ^= 0xff;
    assert!(matches!(try_replay(&file), Err(CodecError::BadMagic)));
    assert!(matches!(try_replay(b"JSONRIFF"), Err(CodecError::BadMagic)));
    assert!(matches!(try_replay(b""), Err(CodecError::BadMagic)));
}

#[test]
fn future_version_is_rejected_with_the_version() {
    let mut file = sample_file();
    let future = SEGMENT_FILE_VERSION + 1;
    file[8..10].copy_from_slice(&future.to_le_bytes());
    match try_replay(&file) {
        Err(CodecError::UnsupportedVersion(v)) => assert_eq!(v, future),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

/// A frame that declares an absurd length is rejected from the length
/// field alone — before any allocation is sized from it, and before any
/// attempt to read the bytes.
#[test]
fn oversized_frame_length_is_rejected_without_allocating() {
    let file = sample_file();
    let mut mutated = file[..12 + 5].to_vec();
    mutated[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
    match try_replay(&mutated) {
        Err(CodecError::BadLength { len, .. }) => assert_eq!(len, u64::from(u32::MAX)),
        other => panic!("expected BadLength, got {other:?}"),
    }
}

/// A declared record count far beyond what the payload could hold is
/// rejected by budget *before* any vector is reserved from it. The
/// crafted frame carries a fresh, correct checksum, so only the count
/// validation can catch it.
#[test]
fn absurd_record_count_is_rejected_by_budget() {
    // Segment payload: index=0, ros_count=2^40, sched_count=0, no bytes.
    let mut payload = Vec::new();
    rtms_util::varint::write_u64(&mut payload, 0);
    rtms_util::varint::write_u64(&mut payload, 1 << 40);
    rtms_util::varint::write_u64(&mut payload, 0);
    let err = rtms_trace::codec::decode_segment(&payload, &[]).expect_err("must reject");
    match err {
        CodecError::BadCount { count, budget } => {
            assert_eq!(count, 1 << 40);
            assert!(budget < 100, "budget must reflect the actual bytes present");
        }
        other => panic!("expected BadCount, got {other:?}"),
    }
}

/// Ten-plus-byte varints and non-canonical encodings are rejected rather
/// than wrapped or truncated.
#[test]
fn oversized_varints_are_rejected() {
    // Eleven 0x80 continuation bytes: longer than any valid u64 varint.
    let payload = vec![0x80u8; 11];
    assert!(matches!(
        rtms_trace::codec::decode_segment(&payload, &[]),
        Err(CodecError::BadVarint)
    ));
}

/// Dictionary strings are capped; a dict frame declaring a huge string
/// length is rejected before allocation.
#[test]
fn oversized_dict_string_is_rejected() {
    let mut payload = Vec::new();
    rtms_util::varint::write_u64(&mut payload, 1); // one entry
    rtms_util::varint::write_u64(&mut payload, u64::from(u32::MAX)); // of absurd length
    let mut dict = Vec::new();
    match rtms_trace::codec::decode_dict_entries(&payload, &mut dict) {
        Err(CodecError::BadLength { .. } | CodecError::BadCount { .. }) => {}
        other => panic!("expected BadLength/BadCount, got {other:?}"),
    }
    assert!(dict.is_empty());
}

/// A topic reference pointing past the dictionary is a typed error, not
/// an index panic.
#[test]
fn dangling_topic_reference_is_rejected() {
    let mut segment = TraceSegment::new();
    segment.push_ros(RosEvent::new(
        Nanos::from_nanos(5),
        Pid::new(3),
        RosPayload::DdsWrite { topic: Topic::plain("/t"), src_ts: SourceTimestamp::new(1) },
    ));
    let mut interner = rtms_trace::TopicInterner::new();
    let mut payload = Vec::new();
    rtms_trace::codec::encode_segment(&segment, &mut interner, &mut payload);
    // Decode against an *empty* dictionary: the reference dangles.
    assert!(matches!(
        rtms_trace::codec::decode_segment(&payload, &[]),
        Err(CodecError::BadTopicRef(_))
    ));
}

/// Segment frames cut mid-record — not just mid-file — stay typed errors
/// at the codec layer, whatever byte the cut lands on.
#[test]
fn segment_payload_truncation_never_panics() {
    let mut segment = TraceSegment::with_index(3);
    for i in 0..4u64 {
        segment.push_ros(RosEvent::new(
            Nanos::from_nanos(i * 100),
            Pid::new(9),
            RosPayload::TakeData {
                callback: CallbackId::new(i),
                topic: Topic::plain("/scan"),
                src_ts: SourceTimestamp::new(i),
            },
        ));
    }
    let mut interner = rtms_trace::TopicInterner::new();
    let mut payload = Vec::new();
    rtms_trace::codec::encode_segment(&segment, &mut interner, &mut payload);
    let dict = interner.entries().to_vec();
    assert!(rtms_trace::codec::decode_segment(&payload, &dict).is_ok());
    for cut in 0..payload.len() {
        assert!(
            rtms_trace::codec::decode_segment(&payload[..cut], &dict).is_err(),
            "a {cut}-byte prefix of a {}-byte segment payload must not decode",
            payload.len()
        );
    }
}
