//! Simulation time as integer nanoseconds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in (or span of) simulated time, in nanoseconds.
///
/// All timestamps in the tracing pipeline are monotonic nanoseconds since
/// simulation start, mirroring the monotonic clock eBPF's
/// `bpf_ktime_get_ns()` exposes on a real system.
///
/// # Example
///
/// ```
/// use rtms_trace::Nanos;
///
/// let a = Nanos::from_millis(2);
/// let b = Nanos::from_micros(500);
/// assert_eq!((a + b).as_nanos(), 2_500_000);
/// assert_eq!((a - b).as_micros_f64(), 1_500.0);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Nanos(u64);

impl Nanos {
    /// Time zero, the simulation epoch.
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant; useful as an "infinity" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Creates a timestamp from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a timestamp from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a timestamp from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a timestamp from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a duration from a floating-point count of milliseconds,
    /// rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        assert!(ms.is_finite() && ms >= 0.0, "millis must be finite and non-negative");
        Nanos((ms * 1_000_000.0).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds, as `f64` (lossy for very large values).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in milliseconds, as `f64`.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in seconds, as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Scales the duration by a factor, rounding to the nearest
    /// nanosecond and clamping negative (or NaN) results to zero.
    pub fn scaled(self, factor: f64) -> Nanos {
        Nanos((self.0 as f64 * factor).round().max(0.0) as u64)
    }

    /// Saturating subtraction: returns [`Nanos::ZERO`] instead of wrapping.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: Nanos) -> Option<Nanos> {
        self.0.checked_add(rhs.0).map(Nanos)
    }

    /// Returns the smaller of two instants.
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two instants.
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self` (time going backwards is a bug).
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_millis(3).as_millis_f64(), 3.0);
        assert_eq!(Nanos::from_micros(7).as_micros_f64(), 7.0);
        assert_eq!(Nanos::from_millis_f64(1.5).as_nanos(), 1_500_000);
    }

    #[test]
    fn arithmetic() {
        let mut t = Nanos::from_micros(10);
        t += Nanos::from_micros(5);
        assert_eq!(t, Nanos::from_micros(15));
        t -= Nanos::from_micros(5);
        assert_eq!(t, Nanos::from_micros(10));
        assert_eq!(Nanos::from_nanos(3).saturating_sub(Nanos::from_nanos(5)), Nanos::ZERO);
    }

    #[test]
    fn min_max() {
        let a = Nanos::from_nanos(1);
        let b = Nanos::from_nanos(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Nanos::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    #[should_panic]
    fn negative_millis_rejected() {
        let _ = Nanos::from_millis_f64(-1.0);
    }

    #[test]
    fn scaled_rounds_and_clamps() {
        assert_eq!(Nanos::from_millis(10).scaled(2.5), Nanos::from_millis(25));
        assert_eq!(Nanos::from_nanos(3).scaled(0.5), Nanos::from_nanos(2)); // round half up
        assert_eq!(Nanos::from_millis(10).scaled(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_millis(10).scaled(f64::NAN), Nanos::ZERO);
    }
}
