//! Trace event model for ROS2 timing model synthesis.
//!
//! This crate defines the vocabulary shared by the whole workspace: the
//! sixteen middleware probes of Table I of the paper ([`Probe`]), the events
//! those probes emit ([`RosEvent`]), the scheduler events emitted by the
//! kernel tracer ([`SchedEvent`]), and the containers that hold them
//! ([`Trace`], [`TraceSession`], [`TraceDatabase`]).
//!
//! Events are plain data: everything downstream (the synthesis algorithms in
//! `rtms-core`, the analyses in `rtms-analysis`) consumes only these types,
//! mirroring how the paper's pipeline consumes only what the eBPF probes
//! export through the perf buffer.
//!
//! # Example
//!
//! ```
//! use rtms_trace::{Nanos, Pid, RosEvent, RosPayload, CallbackKind, Trace};
//!
//! let mut trace = Trace::new();
//! trace.push_ros(RosEvent::new(
//!     Nanos::from_micros(10),
//!     Pid::new(42),
//!     RosPayload::CallbackStart { kind: CallbackKind::Timer },
//! ));
//! assert_eq!(trace.ros_events().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod codec;
pub mod event;
pub mod ids;
pub mod probe;
pub mod sched_event;
pub mod session;
pub mod sink;
pub mod store;
pub mod time;
pub mod topic;
pub mod trace;

pub use codec::{crc32, crc32_update, CodecError, TopicInterner};
pub use event::{CallbackKind, RosEvent, RosPayload};
pub use ids::{CallbackId, Cpu, Pid, Priority};
pub use probe::{Probe, ProbeAttachment, ProbeSpec, PROBE_CATALOG};
pub use sched_event::{SchedEvent, SchedEventKind, ThreadState};
pub use session::{TraceDatabase, TraceSession};
pub use sink::{
    split_by_events, EventSink, MergedEvents, OwnedSegmentEvent, SegmentCursor, SegmentEvent,
    TraceSegment,
};
pub use store::{
    IndexedSegmentFile, SegmentFileStats, SegmentIndexEntry, SegmentReader, SegmentWriter,
    TraceStore, SEGMENT_FILE_MAGIC, SEGMENT_FILE_VERSION, SEGMENT_TRAILER_MAGIC,
};
pub use time::Nanos;
pub use topic::{SourceTimestamp, Topic, TopicKind};
pub use trace::Trace;
