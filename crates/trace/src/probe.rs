//! The probe catalog of Table I.
//!
//! The paper attaches sixteen eBPF probes (uprobes, uretprobes, and one
//! kernel tracepoint) to functions across the ROS2 Foxy stack. [`Probe`]
//! enumerates them, and [`PROBE_CATALOG`] records, for each, the library it
//! lives in, the probed function symbol, the attachment point, and the
//! information the probe extracts — i.e. the full content of Table I plus
//! the `sched_switch` tracepoint of Sec. III-B.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the paper's probes (P1–P16) or the kernel `sched_switch`
/// tracepoint.
///
/// # Example
///
/// ```
/// use rtms_trace::Probe;
///
/// assert_eq!(Probe::P6.spec().function, "rmw_take_int");
/// assert_eq!(Probe::P6.spec().library, "rmw_cyclonedds_cpp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are the paper's probe numbers
pub enum Probe {
    P1,
    P2,
    P3,
    P4,
    P5,
    P6,
    P7,
    P8,
    P9,
    P10,
    P11,
    P12,
    P13,
    P14,
    P15,
    P16,
    /// The `sched_switch` kernel tracepoint used by the kernel tracer.
    SchedSwitch,
    /// The `sched_wakeup` kernel tracepoint (future-work extension of
    /// Sec. VII, used to measure callback waiting times).
    SchedWakeup,
    // When adding a variant, extend `Probe::ALL` below in the same order —
    // flat per-probe accounting arrays index by discriminant.
}

impl Probe {
    /// Every probe, in declaration order: `Probe::ALL[p as usize] == p`
    /// (pinned by a test). Lets per-probe accounting use flat arrays of
    /// `Probe::ALL.len()` slots indexed by discriminant instead of maps.
    pub const ALL: [Probe; 18] = [
        Probe::P1,
        Probe::P2,
        Probe::P3,
        Probe::P4,
        Probe::P5,
        Probe::P6,
        Probe::P7,
        Probe::P8,
        Probe::P9,
        Probe::P10,
        Probe::P11,
        Probe::P12,
        Probe::P13,
        Probe::P14,
        Probe::P15,
        Probe::P16,
        Probe::SchedSwitch,
        Probe::SchedWakeup,
    ];
}

/// How a probe is attached to its target function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ProbeAttachment {
    /// User-space probe at function entry.
    Uprobe,
    /// User-space probe at function exit (reads return values).
    Uretprobe,
    /// Kernel static tracepoint.
    Tracepoint,
}

impl fmt::Display for ProbeAttachment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeAttachment::Uprobe => write!(f, "uprobe"),
            ProbeAttachment::Uretprobe => write!(f, "uretprobe"),
            ProbeAttachment::Tracepoint => write!(f, "tracepoint"),
        }
    }
}

/// Static description of one probe: a row of Table I.
///
/// Serializable (for reports) but not deserializable: the catalog is static
/// data borrowed for `'static`, never parsed back in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct ProbeSpec {
    /// The probe number.
    pub probe: Probe,
    /// The ROS2 (or kernel) component the probed symbol belongs to.
    pub library: &'static str,
    /// The probed function symbol.
    pub function: &'static str,
    /// Attachment point.
    pub attachment: ProbeAttachment,
    /// What the probe extracts (the "Params/Purpose" column of Table I).
    pub purpose: &'static str,
}

/// The full probe catalog: P1–P16 exactly as in Table I, plus the two
/// scheduler tracepoints of Secs. III-B and VII.
pub const PROBE_CATALOG: &[ProbeSpec] = &[
    ProbeSpec {
        probe: Probe::P1,
        library: "rmw_cyclonedds_cpp",
        function: "rmw_create_node",
        attachment: ProbeAttachment::Uprobe,
        purpose: "node name and the PID of the thread that will execute the node's callbacks",
    },
    ProbeSpec {
        probe: Probe::P2,
        library: "rclcpp",
        function: "execute_timer",
        attachment: ProbeAttachment::Uprobe,
        purpose: "notifies timer CB starts",
    },
    ProbeSpec {
        probe: Probe::P3,
        library: "rcl",
        function: "rcl_timer_call",
        attachment: ProbeAttachment::Uprobe,
        purpose: "shows timer CB ID",
    },
    ProbeSpec {
        probe: Probe::P4,
        library: "rclcpp",
        function: "execute_timer",
        attachment: ProbeAttachment::Uretprobe,
        purpose: "notifies timer CB ends",
    },
    ProbeSpec {
        probe: Probe::P5,
        library: "rclcpp",
        function: "execute_subscription",
        attachment: ProbeAttachment::Uprobe,
        purpose: "notifies subscriber CB starts",
    },
    ProbeSpec {
        probe: Probe::P6,
        library: "rmw_cyclonedds_cpp",
        function: "rmw_take_int",
        attachment: ProbeAttachment::Uretprobe,
        purpose: "read event on a topic: subscriber CB ID, topic name, source timestamp",
    },
    ProbeSpec {
        probe: Probe::P7,
        library: "message_filters",
        function: "operator()",
        attachment: ProbeAttachment::Uprobe,
        purpose: "shows that a subscriber CB is used for data synchronization",
    },
    ProbeSpec {
        probe: Probe::P8,
        library: "rclcpp",
        function: "execute_subscription",
        attachment: ProbeAttachment::Uretprobe,
        purpose: "notifies subscriber CB ends",
    },
    ProbeSpec {
        probe: Probe::P9,
        library: "rclcpp",
        function: "execute_service",
        attachment: ProbeAttachment::Uprobe,
        purpose: "notifies service CB starts",
    },
    ProbeSpec {
        probe: Probe::P10,
        library: "rmw_cyclonedds_cpp",
        function: "rmw_take_request",
        attachment: ProbeAttachment::Uretprobe,
        purpose: "service request received: service CB ID, service name, source timestamp",
    },
    ProbeSpec {
        probe: Probe::P11,
        library: "rclcpp",
        function: "execute_service",
        attachment: ProbeAttachment::Uretprobe,
        purpose: "notifies service CB ends",
    },
    ProbeSpec {
        probe: Probe::P12,
        library: "rclcpp",
        function: "execute_client",
        attachment: ProbeAttachment::Uprobe,
        purpose: "notifies client CB starts",
    },
    ProbeSpec {
        probe: Probe::P13,
        library: "rmw_cyclonedds_cpp",
        function: "rmw_take_response",
        attachment: ProbeAttachment::Uretprobe,
        purpose: "service response received: client CB ID, service name, source timestamp",
    },
    ProbeSpec {
        probe: Probe::P14,
        library: "rclcpp",
        function: "take_type_erased_response",
        attachment: ProbeAttachment::Uretprobe,
        purpose: "notifies if a client CB will be dispatched (return value)",
    },
    ProbeSpec {
        probe: Probe::P15,
        library: "rclcpp",
        function: "execute_client",
        attachment: ProbeAttachment::Uretprobe,
        purpose: "notifies client CB ends",
    },
    ProbeSpec {
        probe: Probe::P16,
        library: "cyclonedds",
        function: "dds_write_impl",
        attachment: ProbeAttachment::Uprobe,
        purpose: "write event on a topic: topic name, source timestamp of data/request/response",
    },
    ProbeSpec {
        probe: Probe::SchedSwitch,
        library: "kernel",
        function: "sched_switch",
        attachment: ProbeAttachment::Tracepoint,
        purpose: "CPU, prev/next PID and priority, prev thread state at a context switch",
    },
    ProbeSpec {
        probe: Probe::SchedWakeup,
        library: "kernel",
        function: "sched_wakeup",
        attachment: ProbeAttachment::Tracepoint,
        purpose: "thread made runnable; enables waiting-time measurement (Sec. VII)",
    },
];

impl Probe {
    /// Looks up this probe's row in [`PROBE_CATALOG`].
    pub fn spec(self) -> &'static ProbeSpec {
        PROBE_CATALOG
            .iter()
            .find(|s| s.probe == self)
            .expect("every probe has a catalog entry")
    }

    /// All middleware probes used by the ROS2-RT tracer (P2–P16).
    pub fn runtime_probes() -> impl Iterator<Item = Probe> {
        use Probe::*;
        [P2, P3, P4, P5, P6, P7, P8, P9, P10, P11, P12, P13, P14, P15, P16].into_iter()
    }

    /// Whether this probe marks the start of a callback instance
    /// (P2/P5/P9/P12 in Algorithm 1, line 3).
    pub fn is_callback_start(self) -> bool {
        matches!(self, Probe::P2 | Probe::P5 | Probe::P9 | Probe::P12)
    }

    /// Whether this probe marks the end of a callback instance
    /// (P4/P8/P11/P15 in Algorithm 1, line 28).
    pub fn is_callback_end(self) -> bool {
        matches!(self, Probe::P4 | Probe::P8 | Probe::P11 | Probe::P15)
    }
}

impl fmt::Display for Probe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Probe::SchedSwitch => write!(f, "sched_switch"),
            Probe::SchedWakeup => write!(f, "sched_wakeup"),
            p => write!(f, "{p:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_sixteen_probes_plus_tracepoints() {
        assert_eq!(PROBE_CATALOG.len(), 18);
        assert_eq!(Probe::runtime_probes().count(), 15);
    }

    #[test]
    fn table_i_rows_match_the_paper() {
        assert_eq!(Probe::P1.spec().function, "rmw_create_node");
        assert_eq!(Probe::P3.spec().library, "rcl");
        assert_eq!(Probe::P7.spec().library, "message_filters");
        assert_eq!(Probe::P14.spec().function, "take_type_erased_response");
        assert_eq!(Probe::P16.spec().library, "cyclonedds");
        assert_eq!(Probe::P16.spec().function, "dds_write_impl");
    }

    #[test]
    fn entry_exit_pairing() {
        // execute_* probed at entry and exit: P2/P4, P5/P8, P9/P11, P12/P15.
        for (entry, exit) in [
            (Probe::P2, Probe::P4),
            (Probe::P5, Probe::P8),
            (Probe::P9, Probe::P11),
            (Probe::P12, Probe::P15),
        ] {
            assert_eq!(entry.spec().function, exit.spec().function);
            assert_eq!(entry.spec().attachment, ProbeAttachment::Uprobe);
            assert_eq!(exit.spec().attachment, ProbeAttachment::Uretprobe);
            assert!(entry.is_callback_start());
            assert!(exit.is_callback_end());
        }
    }

    #[test]
    fn take_probes_are_uretprobes() {
        // srcTS is an out-parameter: only readable at function exit.
        for p in [Probe::P6, Probe::P10, Probe::P13] {
            assert_eq!(p.spec().attachment, ProbeAttachment::Uretprobe);
        }
    }

    #[test]
    fn sched_probes_are_tracepoints() {
        assert_eq!(Probe::SchedSwitch.spec().attachment, ProbeAttachment::Tracepoint);
        assert_eq!(Probe::SchedWakeup.spec().attachment, ProbeAttachment::Tracepoint);
    }

    #[test]
    fn display_names() {
        assert_eq!(Probe::P6.to_string(), "P6");
        assert_eq!(Probe::SchedSwitch.to_string(), "sched_switch");
    }
}
