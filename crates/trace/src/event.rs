//! ROS2 middleware events as exported by the eBPF probes.
//!
//! Each event carries the three fields the paper requires of every probe
//! record (Sec. III-A): a timestamp for chronological ordering, a PID to
//! associate the event to a ROS2 node, and the probe identity — here implied
//! by the [`RosPayload`] variant, which also carries the probe-specific
//! arguments read from the middleware function.

use crate::ids::{CallbackId, Pid};
use crate::probe::Probe;
use crate::time::Nanos;
use crate::topic::{SourceTimestamp, Topic};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four kinds of ROS2 callbacks the paper models (Sec. II-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CallbackKind {
    /// Triggered by a periodic timer signal.
    Timer,
    /// Triggered by new data on a subscribed topic.
    Subscriber,
    /// Triggered by a service request (server side of an RPC).
    Service,
    /// Triggered by a service response (caller side of an RPC).
    Client,
}

impl CallbackKind {
    /// The probe that notifies the start of this kind of callback.
    pub fn start_probe(self) -> Probe {
        match self {
            CallbackKind::Timer => Probe::P2,
            CallbackKind::Subscriber => Probe::P5,
            CallbackKind::Service => Probe::P9,
            CallbackKind::Client => Probe::P12,
        }
    }

    /// The probe that notifies the end of this kind of callback.
    pub fn end_probe(self) -> Probe {
        match self {
            CallbackKind::Timer => Probe::P4,
            CallbackKind::Subscriber => Probe::P8,
            CallbackKind::Service => Probe::P11,
            CallbackKind::Client => Probe::P15,
        }
    }
}

impl fmt::Display for CallbackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallbackKind::Timer => write!(f, "timer"),
            CallbackKind::Subscriber => write!(f, "subscriber"),
            CallbackKind::Service => write!(f, "service"),
            CallbackKind::Client => write!(f, "client"),
        }
    }
}

/// Probe-specific information carried by a [`RosEvent`].
///
/// Variants map 1:1 onto the probes of Table I; the mapping is exposed by
/// [`RosPayload::probe`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RosPayload {
    /// P1 — `rmw_create_node`: a node was created.
    NodeInit {
        /// The node name, e.g. `point_cloud_fusion`.
        node_name: String,
    },
    /// P2/P5/P9/P12 — `execute_*` entry: a callback instance starts.
    CallbackStart {
        /// Which executor function fired, identifying the callback kind.
        kind: CallbackKind,
    },
    /// P3 — `rcl_timer_call`: the timer callback's identity.
    TimerCall {
        /// The timer callback ID.
        callback: CallbackId,
    },
    /// P4/P8/P11/P15 — `execute_*` exit: a callback instance ends.
    CallbackEnd {
        /// Which executor function returned.
        kind: CallbackKind,
    },
    /// P6 — `rmw_take_int` exit: data was read from a topic.
    TakeData {
        /// The subscriber callback ID.
        callback: CallbackId,
        /// The subscribed topic.
        topic: Topic,
        /// The source timestamp of the taken sample.
        src_ts: SourceTimestamp,
    },
    /// P7 — `message_filters` `operator()`: the enclosing subscriber
    /// callback feeds a data synchronizer.
    SyncSubscribe,
    /// P10 — `rmw_take_request` exit: a service request was received.
    TakeRequest {
        /// The service callback ID.
        callback: CallbackId,
        /// The service request topic.
        topic: Topic,
        /// The source timestamp of the request.
        src_ts: SourceTimestamp,
    },
    /// P13 — `rmw_take_response` exit: a service response was received.
    TakeResponse {
        /// The client callback ID.
        callback: CallbackId,
        /// The service response topic.
        topic: Topic,
        /// The source timestamp of the response.
        src_ts: SourceTimestamp,
    },
    /// P14 — `take_type_erased_response` exit: whether the client callback
    /// will actually be dispatched in this node (return value `1`) or the
    /// response was addressed to a different client (`0`).
    ClientDispatch {
        /// `true` iff the client callback will run here.
        will_dispatch: bool,
    },
    /// P16 — `dds_write_impl`: data/request/response written to a topic.
    DdsWrite {
        /// The written topic.
        topic: Topic,
        /// The source timestamp assigned to the sample.
        src_ts: SourceTimestamp,
    },
}

impl RosPayload {
    /// The probe that produced this payload.
    pub fn probe(&self) -> Probe {
        match self {
            RosPayload::NodeInit { .. } => Probe::P1,
            RosPayload::CallbackStart { kind } => kind.start_probe(),
            RosPayload::TimerCall { .. } => Probe::P3,
            RosPayload::CallbackEnd { kind } => kind.end_probe(),
            RosPayload::TakeData { .. } => Probe::P6,
            RosPayload::SyncSubscribe => Probe::P7,
            RosPayload::TakeRequest { .. } => Probe::P10,
            RosPayload::TakeResponse { .. } => Probe::P13,
            RosPayload::ClientDispatch { .. } => Probe::P14,
            RosPayload::DdsWrite { .. } => Probe::P16,
        }
    }
}

/// One event exported by a middleware probe through the perf buffer.
///
/// # Example
///
/// ```
/// use rtms_trace::{Nanos, Pid, Probe, RosEvent, RosPayload, CallbackKind};
///
/// let ev = RosEvent::new(
///     Nanos::from_micros(5),
///     Pid::new(7),
///     RosPayload::CallbackStart { kind: CallbackKind::Subscriber },
/// );
/// assert_eq!(ev.probe(), Probe::P5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RosEvent {
    /// Timestamp for chronological ordering.
    pub time: Nanos,
    /// PID of the thread on which the probed function ran, identifying the
    /// ROS2 node.
    pub pid: Pid,
    /// Probe-specific data.
    pub payload: RosPayload,
}

impl RosEvent {
    /// Creates an event.
    pub fn new(time: Nanos, pid: Pid, payload: RosPayload) -> Self {
        RosEvent { time, pid, payload }
    }

    /// The probe that produced this event.
    pub fn probe(&self) -> Probe {
        self.payload.probe()
    }

    /// On-the-wire size of this event in bytes, modeling the fixed-size C
    /// structs BCC programs push through `bpf_perf_event_output` (string
    /// fields are fixed-width `char` buffers, records are 8-byte aligned).
    /// Used by the trace-volume experiment (Sec. VI: ~9 MB per 60 s).
    pub fn encoded_size(&self) -> usize {
        // 8 B timestamp + 4 B PID + 4 B probe tag/padding.
        const HEADER: usize = 16;
        // Fixed-width topic/name buffer, as in BCC's TASK_COMM-style structs.
        const NAME_BUF: usize = 64;
        let payload = match &self.payload {
            RosPayload::NodeInit { .. } => NAME_BUF,
            RosPayload::CallbackStart { .. } | RosPayload::CallbackEnd { .. } => 8,
            RosPayload::TimerCall { .. } => 8,
            RosPayload::TakeData { .. }
            | RosPayload::TakeRequest { .. }
            | RosPayload::TakeResponse { .. } => 8 + 8 + NAME_BUF,
            RosPayload::SyncSubscribe => 0,
            RosPayload::ClientDispatch { .. } => 8,
            RosPayload::DdsWrite { .. } => 8 + NAME_BUF,
        };
        HEADER + payload
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(payload: RosPayload) -> RosEvent {
        RosEvent::new(Nanos::from_nanos(1), Pid::new(1), payload)
    }

    #[test]
    fn payload_probe_mapping() {
        assert_eq!(ev(RosPayload::NodeInit { node_name: "n".into() }).probe(), Probe::P1);
        assert_eq!(
            ev(RosPayload::CallbackStart { kind: CallbackKind::Timer }).probe(),
            Probe::P2
        );
        assert_eq!(ev(RosPayload::TimerCall { callback: CallbackId::new(1) }).probe(), Probe::P3);
        assert_eq!(
            ev(RosPayload::CallbackEnd { kind: CallbackKind::Client }).probe(),
            Probe::P15
        );
        assert_eq!(ev(RosPayload::SyncSubscribe).probe(), Probe::P7);
        assert_eq!(
            ev(RosPayload::ClientDispatch { will_dispatch: true }).probe(),
            Probe::P14
        );
        assert_eq!(
            ev(RosPayload::DdsWrite {
                topic: Topic::plain("/t"),
                src_ts: SourceTimestamp::new(9)
            })
            .probe(),
            Probe::P16
        );
    }

    #[test]
    fn start_end_probe_pairs() {
        for kind in [
            CallbackKind::Timer,
            CallbackKind::Subscriber,
            CallbackKind::Service,
            CallbackKind::Client,
        ] {
            assert!(kind.start_probe().is_callback_start());
            assert!(kind.end_probe().is_callback_end());
        }
    }

    #[test]
    fn take_events_map_to_take_probes() {
        let t = Topic::plain("/x");
        let ts = SourceTimestamp::new(1);
        assert_eq!(
            ev(RosPayload::TakeData { callback: CallbackId::new(1), topic: t.clone(), src_ts: ts })
                .probe(),
            Probe::P6
        );
        assert_eq!(
            ev(RosPayload::TakeRequest {
                callback: CallbackId::new(1),
                topic: Topic::service_request("/s"),
                src_ts: ts
            })
            .probe(),
            Probe::P10
        );
        assert_eq!(
            ev(RosPayload::TakeResponse {
                callback: CallbackId::new(1),
                topic: Topic::service_response("/s"),
                src_ts: ts
            })
            .probe(),
            Probe::P13
        );
    }

    #[test]
    fn encoded_size_is_fixed_per_record_kind() {
        let small = ev(RosPayload::SyncSubscribe).encoded_size();
        let big = ev(RosPayload::DdsWrite {
            topic: Topic::plain("/a/very/long/topic/name"),
            src_ts: SourceTimestamp::new(1),
        })
        .encoded_size();
        assert!(big > small);
        assert_eq!(small, 16, "SyncSubscribe is header-only");
        assert_eq!(big, 16 + 8 + 64, "DdsWrite carries srcTS + fixed topic buffer");
    }

    #[test]
    fn serde_round_trip() {
        let e = ev(RosPayload::TakeData {
            callback: CallbackId::new(3),
            topic: Topic::plain("/t"),
            src_ts: SourceTimestamp::new(5),
        });
        let json = serde_json::to_string(&e).expect("ser");
        let back: RosEvent = serde_json::from_str(&json).expect("de");
        assert_eq!(e, back);
    }
}
