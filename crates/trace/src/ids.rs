//! Identifier newtypes used across the tracing pipeline.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A process/thread identifier.
///
/// The paper identifies each ROS2 node by the PID of the thread running its
/// single-threaded executor (probe P1), so a `Pid` doubles as the node
/// identity in trace post-processing.
///
/// # Example
///
/// ```
/// use rtms_trace::Pid;
/// let pid = Pid::new(1234);
/// assert_eq!(pid.get(), 1234);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Pid(u32);

impl Pid {
    /// The idle task (swapper), PID 0, which the kernel tracer also observes
    /// in `sched_switch` events.
    pub const IDLE: Pid = Pid(0);

    /// Creates a PID from a raw value.
    pub const fn new(raw: u32) -> Self {
        Pid(raw)
    }

    /// The raw numeric value.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Whether this is the idle task.
    pub const fn is_idle(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid:{}", self.0)
    }
}

/// A CPU core index.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Cpu(u16);

impl Cpu {
    /// Creates a CPU index.
    pub const fn new(index: u16) -> Self {
        Cpu(index)
    }

    /// The raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// A scheduling priority as reported in `sched_switch` events.
///
/// Higher values mean more urgent, matching real-time (SCHED_FIFO-style)
/// priorities; `Priority::NORMAL` (0) corresponds to a best-effort thread.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Priority(i32);

impl Priority {
    /// Best-effort priority used by non-real-time threads.
    pub const NORMAL: Priority = Priority(0);

    /// Creates a priority from a raw value.
    pub const fn new(raw: i32) -> Self {
        Priority(raw)
    }

    /// The raw numeric value.
    pub const fn get(self) -> i32 {
        self.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio:{}", self.0)
    }
}

/// An opaque callback identifier.
///
/// On a real system this is the address of the callback object read from
/// middleware function arguments (e.g. `rcl_timer_call` for timers, the
/// subscription handle in `rmw_take_int` for subscribers). The simulator
/// assigns unique non-zero integers with the same role: stable across
/// invocations, unique within a run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct CallbackId(u64);

impl CallbackId {
    /// Creates a callback ID from a raw value.
    pub const fn new(raw: u64) -> Self {
        CallbackId(raw)
    }

    /// The raw numeric value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for CallbackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cb:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_basics() {
        assert!(Pid::IDLE.is_idle());
        assert!(!Pid::new(3).is_idle());
        assert_eq!(Pid::new(3).to_string(), "pid:3");
    }

    #[test]
    fn cpu_index() {
        assert_eq!(Cpu::new(2).index(), 2);
        assert_eq!(Cpu::new(2).to_string(), "cpu2");
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::new(10) > Priority::NORMAL);
    }

    #[test]
    fn callback_id_display_is_hex() {
        assert_eq!(CallbackId::new(255).to_string(), "cb:0xff");
    }

    #[test]
    fn ids_serde_transparent() {
        let pid: Pid = serde_json::from_str("7").expect("pid");
        assert_eq!(pid, Pid::new(7));
        assert_eq!(serde_json::to_string(&CallbackId::new(9)).expect("ser"), "9");
    }
}
