//! Compact binary encoding of trace events.
//!
//! The JSON trace store serializes every event through the serde value
//! tree — fine for archival, far too slow and fat for record-once
//! replay-many workflows. This module is the dense alternative: a
//! hand-rolled little-endian binary encoding (one tag byte plus LEB128
//! varints, see `rtms_util::varint`) in which a typical event costs a
//! handful of bytes instead of a hundred.
//!
//! Topic names are *interned*: the encoder assigns each distinct name a
//! small integer through a [`TopicInterner`] keyed off the shared
//! `Arc<str>` topic plumbing (a pointer-identity hit is one hash of a
//! `usize`), and events reference the dictionary entry. Each topic string
//! is therefore written once per file, and — symmetrically — the decoder
//! materializes one `Arc<str>` per dictionary entry and *shares* it across
//! every decoded event, so a replayed stream enjoys the same
//! allocation-free topic handling as a live one.
//!
//! Segment frames store their records *interleaved* in merged
//! chronological order (the [`crate::SegmentCursor`] walk order for
//! sorted input), with per-record timestamps delta-encoded against the
//! previous record. Replay therefore reads events in exactly the order
//! synthesis consumes them — [`decode_segment_events`] streams records
//! straight into a callback with no intermediate segment buffer, and the
//! equal-timestamp tie contract (ROS2 before scheduler) is a structural
//! property of the bytes rather than a re-sorting step.
//!
//! The functions here transform between events and byte buffers only;
//! framing, checksums, and file I/O live in [`crate::store`]
//! (`SegmentWriter`/`SegmentReader`). Decoding is defensive end to end:
//! malformed input produces a typed [`CodecError`], never a panic, and
//! declared counts are validated against the bytes actually present before
//! any allocation happens — the robustness suite feeds this module
//! truncated, bit-flipped, and oversized-varint input.
//!
//! The exact wire layout (and its versioning rules) is documented in
//! `docs/TRACE_FORMAT.md`.

use crate::event::{CallbackKind, RosEvent, RosPayload};
use crate::ids::{CallbackId, Cpu, Pid, Priority};
use crate::sched_event::{SchedEvent, SchedEventKind, ThreadState};
use crate::sink::{EventSink, OwnedSegmentEvent, TraceSegment};
use crate::time::Nanos;
use crate::topic::{SourceTimestamp, Topic, TopicKind};
use rtms_util::{varint, FxHashMap};
use std::fmt;
use std::sync::Arc;

/// Errors produced while decoding (or framing) binary trace data.
///
/// Every variant is a *diagnosis*: the robustness suite asserts that each
/// corruption class maps to its typed error instead of a panic or a
/// silent misparse.
#[derive(Debug)]
pub enum CodecError {
    /// The file does not start with the segment-file magic.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    UnsupportedVersion(u16),
    /// The input ended in the middle of a record or frame.
    Truncated,
    /// A varint was truncated, longer than ten bytes, or overflowed.
    BadVarint,
    /// An unknown event record tag.
    BadTag(u8),
    /// An unknown frame kind byte.
    BadFrameKind(u8),
    /// A topic reference pointing outside the dictionary, or carrying
    /// invalid kind bits.
    BadTopicRef(u64),
    /// A declared record count that cannot fit in the bytes present —
    /// rejected *before* any allocation is sized from it.
    BadCount {
        /// The declared number of records.
        count: u64,
        /// The maximum the remaining payload could hold.
        budget: u64,
    },
    /// A declared length exceeding its hard cap.
    BadLength {
        /// The declared length in bytes.
        len: u64,
        /// The cap it violates.
        max: u64,
    },
    /// A frame whose checksum does not match its payload.
    ChecksumMismatch,
    /// A string field that is not valid UTF-8.
    BadUtf8,
    /// The file ended without its index frame — a truncation at a frame
    /// boundary, which per-frame checksums alone cannot catch.
    MissingIndex,
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a segment file (bad magic)"),
            CodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported segment-file version {v}")
            }
            CodecError::Truncated => write!(f, "input truncated mid-record"),
            CodecError::BadVarint => write!(f, "malformed varint (truncated or oversized)"),
            CodecError::BadTag(t) => write!(f, "unknown event tag {t:#04x}"),
            CodecError::BadFrameKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            CodecError::BadTopicRef(r) => write!(f, "invalid topic reference {r:#x}"),
            CodecError::BadCount { count, budget } => {
                write!(f, "record count {count} exceeds payload budget {budget}")
            }
            CodecError::BadLength { len, max } => {
                write!(f, "declared length {len} exceeds cap {max}")
            }
            CodecError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::MissingIndex => {
                write!(f, "file ends without an index frame (truncated at a frame boundary?)")
            }
            CodecError::Io(e) => write!(f, "I/O failure: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG checksum), slicing-by-8.
///
/// Used as the per-frame checksum of the segment-file container, where
/// it covers the frame *header* (kind byte, length) as well as the
/// payload — see [`crc32_update`] — so a flipped bit anywhere in a
/// frame, including one that re-routes or re-sizes it, is caught; the
/// robustness suite pins this. The slicing-by-8 formulation consumes
/// eight bytes per step through eight derived tables, so checksumming
/// stays a rounding error next to decode on the replay hot path.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_update(u32::MAX, bytes)
}

/// One incremental CRC-32 step over `bytes`, for checksumming
/// discontiguous data without copying it together.
///
/// `state` is the *uncomplemented* remainder: start from `u32::MAX`,
/// chain over each piece, and complement (`!`) the final state to get
/// the checksum. `crc32(x)` equals `!crc32_update(u32::MAX, x)`.
pub fn crc32_update(state: u32, bytes: &[u8]) -> u32 {
    // TABLES[0] is the classic byte-at-a-time table; TABLES[k] advances a
    // byte through k extra zero bytes, which is what lets one step fold
    // eight input bytes into the running remainder at once.
    const TABLES: [[u32; 256]; 8] = {
        let mut tables = [[0u32; 256]; 8];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            tables[0][i] = c;
            i += 1;
        }
        let mut t = 1;
        while t < 8 {
            let mut i = 0;
            while i < 256 {
                let prev = tables[t - 1][i];
                tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
                i += 1;
            }
            t += 1;
        }
        tables
    };
    let mut c = state;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c
}

// ---------------------------------------------------------------------------
// Event record tags. One byte selects the payload variant; boolean and
// small-enum fields (callback kind, dispatch decision, thread state) are
// folded into the tag so they cost no extra bytes. ROS2 and scheduler
// records use disjoint ranges — segment frames store the two streams
// *interleaved* in merged chronological order, and the tag byte (below or
// at/above `TAG_SCHED_SWITCH`) is what routes each record to its stream.
// ---------------------------------------------------------------------------

const TAG_NODE_INIT: u8 = 0x00;
const TAG_CB_START: u8 = 0x01; // + kind (0..=3)
const TAG_TIMER_CALL: u8 = 0x05;
const TAG_CB_END: u8 = 0x06; // + kind (0..=3)
const TAG_TAKE_DATA: u8 = 0x0a;
const TAG_SYNC_SUBSCRIBE: u8 = 0x0b;
const TAG_TAKE_REQUEST: u8 = 0x0c;
const TAG_TAKE_RESPONSE: u8 = 0x0d;
const TAG_CLIENT_DISPATCH: u8 = 0x0e; // + will_dispatch (0..=1)
const TAG_DDS_WRITE: u8 = 0x10;

const TAG_SCHED_SWITCH: u8 = 0x20; // + prev_state (0..=2)
const TAG_SCHED_WAKEUP: u8 = 0x23;

const fn kind_code(kind: CallbackKind) -> u8 {
    match kind {
        CallbackKind::Timer => 0,
        CallbackKind::Subscriber => 1,
        CallbackKind::Service => 2,
        CallbackKind::Client => 3,
    }
}

fn kind_from_code(code: u8) -> CallbackKind {
    match code {
        0 => CallbackKind::Timer,
        1 => CallbackKind::Subscriber,
        2 => CallbackKind::Service,
        _ => CallbackKind::Client,
    }
}

const fn state_code(state: ThreadState) -> u8 {
    match state {
        ThreadState::Runnable => 0,
        ThreadState::Sleeping => 1,
        ThreadState::Dead => 2,
    }
}

fn state_from_code(code: u8) -> ThreadState {
    match code {
        0 => ThreadState::Runnable,
        1 => ThreadState::Sleeping,
        _ => ThreadState::Dead,
    }
}

/// Topic kind bits of a topic reference (low two bits; the dictionary
/// index occupies the rest).
const KIND_PLAIN: u64 = 0;
const KIND_REQUEST: u64 = 1;
const KIND_RESPONSE: u64 = 2;

/// Smallest possible encoded event: tag + one-byte time + one-byte PID.
/// Declared record counts are validated against the remaining payload at
/// this granularity before any capacity is reserved.
const MIN_EVENT_BYTES: u64 = 3;

/// Hard cap on an inline string field (node names). Far above any real
/// name, far below anything that could be used to balloon an allocation.
const MAX_STRING_LEN: u64 = 64 * 1024;

// ---------------------------------------------------------------------------
// Encoder side
// ---------------------------------------------------------------------------

/// The encoder's topic dictionary: maps each distinct topic name to a
/// dense integer id, assigned in order of first appearance.
///
/// Lookup is pointer-first: the streaming pipeline carries each topic
/// name as one shared `Arc<str>` end to end (PR 5's plumbing), so the
/// common case is a hash of the allocation's address. Distinct `Arc`s
/// with equal contents (e.g. two co-deployed apps naming the same topic)
/// fall back to a content-keyed map and still share one dictionary entry
/// — each name is written to the file exactly once.
#[derive(Debug, Default)]
pub struct TopicInterner {
    entries: Vec<Arc<str>>,
    by_ptr: FxHashMap<usize, u32>,
    by_content: FxHashMap<Arc<str>, u32>,
    flushed: usize,
}

impl TopicInterner {
    /// Creates an empty dictionary.
    pub fn new() -> TopicInterner {
        TopicInterner::default()
    }

    /// Returns the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &Arc<str>) -> u32 {
        let ptr = Arc::as_ptr(name) as *const u8 as usize;
        if let Some(&id) = self.by_ptr.get(&ptr) {
            return id;
        }
        let id = match self.by_content.get(name) {
            Some(&id) => id,
            None => {
                let id = u32::try_from(self.entries.len()).expect("dictionary overflow");
                self.entries.push(Arc::clone(name));
                self.by_content.insert(Arc::clone(name), id);
                id
            }
        };
        self.by_ptr.insert(ptr, id);
        id
    }

    /// All interned names, in id order.
    pub fn entries(&self) -> &[Arc<str>] {
        &self.entries
    }

    /// Entries interned since the last [`TopicInterner::mark_flushed`] —
    /// the ones a writer must emit in a dictionary frame before the next
    /// segment frame can reference them.
    pub fn pending(&self) -> &[Arc<str>] {
        &self.entries[self.flushed..]
    }

    /// Marks every current entry as written to the file.
    pub fn mark_flushed(&mut self) {
        self.flushed = self.entries.len();
    }
}

/// Encodes a dictionary frame payload: the count of new entries followed
/// by each name as a length-prefixed UTF-8 string.
pub fn encode_dict_entries(entries: &[Arc<str>], out: &mut Vec<u8>) {
    varint::write_u64(out, entries.len() as u64);
    for name in entries {
        varint::write_u64(out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
    }
}

/// Decodes a dictionary frame payload, appending the new names to `dict`.
pub fn decode_dict_entries(payload: &[u8], dict: &mut Vec<Arc<str>>) -> Result<(), CodecError> {
    let mut r = ByteReader::new(payload);
    let count = r.varint()?;
    // Every entry costs at least one length byte.
    if count > r.remaining() as u64 {
        return Err(CodecError::BadCount { count, budget: r.remaining() as u64 });
    }
    dict.reserve(count as usize);
    for _ in 0..count {
        let len = r.varint()?;
        if len > MAX_STRING_LEN {
            return Err(CodecError::BadLength { len, max: MAX_STRING_LEN });
        }
        let bytes = r.bytes(len as usize)?;
        let name = std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)?;
        dict.push(Arc::from(name));
    }
    if !r.is_empty() {
        return Err(CodecError::Truncated);
    }
    Ok(())
}

/// Encodes one segment as a segment frame payload: the segment's run
/// index, both stream lengths, then the records of both streams
/// *interleaved* — a two-pointer merge that preserves each stream's own
/// order and, on a cross-stream timestamp tie, writes the ROS2 record
/// first. For the time-sorted segments every producer path emits, the
/// on-disk record order therefore *is* the [`crate::SegmentCursor`] walk
/// order, which is what lets replay feed a decoded frame straight into
/// synthesis without re-merging (and makes the equal-timestamp tie
/// contract a structural property of the format).
///
/// Timestamps are delta-encoded: each record stores the ZigZag varint
/// difference from the previous record's timestamp (starting from zero),
/// so the near-sorted walk costs one or two bytes per time instead of a
/// full absolute varint.
///
/// Because the merge is stable per stream, decoding reconstructs both
/// streams exactly as inserted — the round trip is byte-exact for *any*
/// segment, sorted or not.
///
/// New topic names encountered while encoding are interned into `dict`;
/// the caller (the [`crate::store::SegmentWriter`]) must emit
/// [`TopicInterner::pending`] in a dictionary frame *before* this frame.
pub fn encode_segment(segment: &TraceSegment, dict: &mut TopicInterner, out: &mut Vec<u8>) {
    varint::write_u64(out, segment.index() as u64);
    let ros = segment.ros_events();
    let sched = segment.sched_events();
    varint::write_u64(out, ros.len() as u64);
    varint::write_u64(out, sched.len() as u64);
    let mut prev = Nanos::from_nanos(0);
    let (mut ri, mut si) = (0, 0);
    while ri < ros.len() && si < sched.len() {
        if ros[ri].time <= sched[si].time {
            encode_ros_event(&ros[ri], &mut prev, dict, out);
            ri += 1;
        } else {
            encode_sched_event(&sched[si], &mut prev, out);
            si += 1;
        }
    }
    for e in &ros[ri..] {
        encode_ros_event(e, &mut prev, dict, out);
    }
    for e in &sched[si..] {
        encode_sched_event(e, &mut prev, out);
    }
}

/// The header of a segment frame payload: run index and both stream
/// lengths, with the declared total validated against the bytes present
/// *before* any allocation is sized from it.
struct SegmentHeader {
    index: u64,
    ros_count: u64,
    sched_count: u64,
}

impl SegmentHeader {
    fn decode(r: &mut ByteReader<'_>) -> Result<SegmentHeader, CodecError> {
        let index = r.varint()?;
        let ros_count = r.varint()?;
        let sched_count = r.varint()?;
        let budget = r.remaining() as u64 / MIN_EVENT_BYTES;
        let total = ros_count.checked_add(sched_count).ok_or(CodecError::BadVarint)?;
        if total > budget {
            return Err(CodecError::BadCount { count: total, budget });
        }
        Ok(SegmentHeader { index, ros_count, sched_count })
    }

    fn total(&self) -> u64 {
        self.ros_count + self.sched_count
    }
}

/// Decodes a segment frame payload produced by [`encode_segment`].
pub fn decode_segment(payload: &[u8], dict: &[Arc<str>]) -> Result<TraceSegment, CodecError> {
    let mut segment = TraceSegment::new();
    decode_segment_into(payload, dict, &mut segment)?;
    Ok(segment)
}

/// Decodes a segment frame payload into an existing segment, reusing its
/// event buffers — the allocation-lean form batch replay uses (one
/// segment allocation per *replay*, not per frame). Records are routed
/// back to their stream by tag family, so each stream comes back exactly
/// as it went in.
pub fn decode_segment_into(
    payload: &[u8],
    dict: &[Arc<str>],
    segment: &mut TraceSegment,
) -> Result<(), CodecError> {
    segment.clear();
    let mut r = ByteReader::new(payload);
    let header = SegmentHeader::decode(&mut r)?;
    segment.set_index(header.index as usize);
    segment.reserve(header.ros_count as usize, header.sched_count as usize);
    let mut prev = Nanos::from_nanos(0);
    for _ in 0..header.total() {
        match decode_event(&mut r, &mut prev, dict)? {
            OwnedSegmentEvent::Ros(e) => segment.push_ros(e),
            OwnedSegmentEvent::Sched(e) => segment.push_sched(e),
        }
    }
    if segment.ros_events().len() as u64 != header.ros_count || !r.is_empty() {
        return Err(CodecError::Truncated);
    }
    Ok(())
}

/// Streaming decode of a segment frame payload: invokes `f` with each
/// record, in on-disk (merged chronological) order, without materializing
/// a [`TraceSegment`]. Returns the segment's run index and event count.
///
/// This is the replay hot path: `SynthesisSession::feed_reader` fuses
/// this walk directly into the synthesis state machine, so a replayed
/// file costs one decode pass and zero intermediate event buffers.
pub fn decode_segment_events<F: FnMut(OwnedSegmentEvent)>(
    payload: &[u8],
    dict: &[Arc<str>],
    mut f: F,
) -> Result<(usize, usize), CodecError> {
    let mut r = ByteReader::new(payload);
    let header = SegmentHeader::decode(&mut r)?;
    let mut prev = Nanos::from_nanos(0);
    let mut ros_seen = 0u64;
    for _ in 0..header.total() {
        let event = decode_event(&mut r, &mut prev, dict)?;
        if matches!(event, OwnedSegmentEvent::Ros(_)) {
            ros_seen += 1;
        }
        f(event);
    }
    if ros_seen != header.ros_count || !r.is_empty() {
        return Err(CodecError::Truncated);
    }
    Ok((header.index as usize, header.total() as usize))
}

/// Decodes one interleaved record, routing on the tag byte's family
/// range.
#[inline]
fn decode_event(
    r: &mut ByteReader<'_>,
    prev: &mut Nanos,
    dict: &[Arc<str>],
) -> Result<OwnedSegmentEvent, CodecError> {
    match r.peek() {
        Some(t) if t < TAG_SCHED_SWITCH => {
            decode_ros_event(r, prev, dict).map(OwnedSegmentEvent::Ros)
        }
        Some(_) => decode_sched_event(r, prev).map(OwnedSegmentEvent::Sched),
        None => Err(CodecError::Truncated),
    }
}

#[inline]
fn encode_topic(topic: &Topic, dict: &mut TopicInterner, out: &mut Vec<u8>) {
    let id = u64::from(dict.intern(topic.name_arc()));
    let kind = match topic.kind() {
        TopicKind::Plain => KIND_PLAIN,
        TopicKind::ServiceRequest => KIND_REQUEST,
        TopicKind::ServiceResponse => KIND_RESPONSE,
    };
    varint::write_u64(out, (id << 2) | kind);
}

#[inline]
fn decode_topic(r: &mut ByteReader<'_>, dict: &[Arc<str>]) -> Result<Topic, CodecError> {
    let raw = r.varint()?;
    let kind = match raw & 0b11 {
        KIND_PLAIN => TopicKind::Plain,
        KIND_REQUEST => TopicKind::ServiceRequest,
        KIND_RESPONSE => TopicKind::ServiceResponse,
        _ => return Err(CodecError::BadTopicRef(raw)),
    };
    let name = dict
        .get((raw >> 2) as usize)
        .ok_or(CodecError::BadTopicRef(raw))?;
    Ok(Topic::from_raw_parts(Arc::clone(name), kind))
}

/// Writes `time` as a ZigZag delta from `*prev`, then advances `*prev`.
#[inline]
fn encode_time_delta(time: Nanos, prev: &mut Nanos, out: &mut Vec<u8>) {
    let delta = time.as_nanos().wrapping_sub(prev.as_nanos()) as i64;
    varint::write_i64(out, delta);
    *prev = time;
}

/// Reads a ZigZag time delta, applies it to `*prev`, and returns the
/// absolute timestamp. Wrapping arithmetic keeps adversarial deltas from
/// panicking — a nonsense time decodes to a nonsense (but typed-error- or
/// checksum-caught) value, never a crash.
#[inline]
fn decode_time_delta(r: &mut ByteReader<'_>, prev: &mut Nanos) -> Result<Nanos, CodecError> {
    let delta = r.varint_i64()?;
    let time = Nanos::from_nanos(prev.as_nanos().wrapping_add(delta as u64));
    *prev = time;
    Ok(time)
}

/// Encodes one ROS2 event record.
pub fn encode_ros_event(e: &RosEvent, prev: &mut Nanos, dict: &mut TopicInterner, out: &mut Vec<u8>) {
    let tag = match &e.payload {
        RosPayload::NodeInit { .. } => TAG_NODE_INIT,
        RosPayload::CallbackStart { kind } => TAG_CB_START + kind_code(*kind),
        RosPayload::TimerCall { .. } => TAG_TIMER_CALL,
        RosPayload::CallbackEnd { kind } => TAG_CB_END + kind_code(*kind),
        RosPayload::TakeData { .. } => TAG_TAKE_DATA,
        RosPayload::SyncSubscribe => TAG_SYNC_SUBSCRIBE,
        RosPayload::TakeRequest { .. } => TAG_TAKE_REQUEST,
        RosPayload::TakeResponse { .. } => TAG_TAKE_RESPONSE,
        RosPayload::ClientDispatch { will_dispatch } => {
            TAG_CLIENT_DISPATCH + u8::from(*will_dispatch)
        }
        RosPayload::DdsWrite { .. } => TAG_DDS_WRITE,
    };
    out.push(tag);
    encode_time_delta(e.time, prev, out);
    varint::write_u32(out, e.pid.get());
    match &e.payload {
        RosPayload::NodeInit { node_name } => {
            varint::write_u64(out, node_name.len() as u64);
            out.extend_from_slice(node_name.as_bytes());
        }
        RosPayload::TimerCall { callback } => varint::write_u64(out, callback.get()),
        RosPayload::TakeData { callback, topic, src_ts }
        | RosPayload::TakeRequest { callback, topic, src_ts }
        | RosPayload::TakeResponse { callback, topic, src_ts } => {
            varint::write_u64(out, callback.get());
            encode_topic(topic, dict, out);
            varint::write_u64(out, src_ts.get());
        }
        RosPayload::DdsWrite { topic, src_ts } => {
            encode_topic(topic, dict, out);
            varint::write_u64(out, src_ts.get());
        }
        RosPayload::CallbackStart { .. }
        | RosPayload::CallbackEnd { .. }
        | RosPayload::SyncSubscribe
        | RosPayload::ClientDispatch { .. } => {}
    }
}

/// Decodes one ROS2 event record.
fn decode_ros_event(
    r: &mut ByteReader<'_>,
    prev: &mut Nanos,
    dict: &[Arc<str>],
) -> Result<RosEvent, CodecError> {
    let tag = r.u8()?;
    let time = decode_time_delta(r, prev)?;
    let pid = Pid::new(r.varint_u32()?);
    let payload = match tag {
        TAG_NODE_INIT => {
            let len = r.varint()?;
            if len > MAX_STRING_LEN {
                return Err(CodecError::BadLength { len, max: MAX_STRING_LEN });
            }
            let bytes = r.bytes(len as usize)?;
            let node_name =
                std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)?.to_string();
            RosPayload::NodeInit { node_name }
        }
        t if (TAG_CB_START..TAG_CB_START + 4).contains(&t) => {
            RosPayload::CallbackStart { kind: kind_from_code(t - TAG_CB_START) }
        }
        TAG_TIMER_CALL => RosPayload::TimerCall { callback: CallbackId::new(r.varint()?) },
        t if (TAG_CB_END..TAG_CB_END + 4).contains(&t) => {
            RosPayload::CallbackEnd { kind: kind_from_code(t - TAG_CB_END) }
        }
        TAG_TAKE_DATA | TAG_TAKE_REQUEST | TAG_TAKE_RESPONSE => {
            let callback = CallbackId::new(r.varint()?);
            let topic = decode_topic(r, dict)?;
            let src_ts = SourceTimestamp::new(r.varint()?);
            match tag {
                TAG_TAKE_DATA => RosPayload::TakeData { callback, topic, src_ts },
                TAG_TAKE_REQUEST => RosPayload::TakeRequest { callback, topic, src_ts },
                _ => RosPayload::TakeResponse { callback, topic, src_ts },
            }
        }
        TAG_SYNC_SUBSCRIBE => RosPayload::SyncSubscribe,
        TAG_CLIENT_DISPATCH => RosPayload::ClientDispatch { will_dispatch: false },
        t if t == TAG_CLIENT_DISPATCH + 1 => RosPayload::ClientDispatch { will_dispatch: true },
        TAG_DDS_WRITE => {
            let topic = decode_topic(r, dict)?;
            let src_ts = SourceTimestamp::new(r.varint()?);
            RosPayload::DdsWrite { topic, src_ts }
        }
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(RosEvent { time, pid, payload })
}

/// Encodes one scheduler event record.
pub fn encode_sched_event(e: &SchedEvent, prev: &mut Nanos, out: &mut Vec<u8>) {
    match &e.kind {
        SchedEventKind::Switch { prev_pid, prev_prio, prev_state, next_pid, next_prio } => {
            out.push(TAG_SCHED_SWITCH + state_code(*prev_state));
            encode_time_delta(e.time, prev, out);
            varint::write_u64(out, u64::from(e.cpu.index() as u16));
            varint::write_u32(out, prev_pid.get());
            varint::write_i64(out, i64::from(prev_prio.get()));
            varint::write_u32(out, next_pid.get());
            varint::write_i64(out, i64::from(next_prio.get()));
        }
        SchedEventKind::Wakeup { pid, prio } => {
            out.push(TAG_SCHED_WAKEUP);
            encode_time_delta(e.time, prev, out);
            varint::write_u64(out, u64::from(e.cpu.index() as u16));
            varint::write_u32(out, pid.get());
            varint::write_i64(out, i64::from(prio.get()));
        }
    }
}

/// Decodes one scheduler event record.
fn decode_sched_event(r: &mut ByteReader<'_>, prev: &mut Nanos) -> Result<SchedEvent, CodecError> {
    let tag = r.u8()?;
    let time = decode_time_delta(r, prev)?;
    let cpu = Cpu::new(u16::try_from(r.varint()?).map_err(|_| CodecError::BadVarint)?);
    let kind = match tag {
        t if (TAG_SCHED_SWITCH..TAG_SCHED_SWITCH + 3).contains(&t) => {
            let prev_pid = Pid::new(r.varint_u32()?);
            let prev_prio = Priority::new(r.varint_i32()?);
            let next_pid = Pid::new(r.varint_u32()?);
            let next_prio = Priority::new(r.varint_i32()?);
            SchedEventKind::Switch {
                prev_pid,
                prev_prio,
                prev_state: state_from_code(t - TAG_SCHED_SWITCH),
                next_pid,
                next_prio,
            }
        }
        TAG_SCHED_WAKEUP => {
            let pid = Pid::new(r.varint_u32()?);
            let prio = Priority::new(r.varint_i32()?);
            SchedEventKind::Wakeup { pid, prio }
        }
        t => return Err(CodecError::BadTag(t)),
    };
    Ok(SchedEvent { time, cpu, kind })
}

/// A bounds-checked cursor over a byte slice: every read is validated,
/// every failure is a typed error.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.buf.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn peek(&self) -> Option<u8> {
        self.buf.get(self.pos).copied()
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        // One-byte values dominate the wire (deltas, ids, cpus, flags);
        // skip the general decoder for them.
        if let Some(&b) = self.buf.get(self.pos) {
            if b < 0x80 {
                self.pos += 1;
                return Ok(u64::from(b));
            }
        }
        let (v, n) = varint::read_u64(&self.buf[self.pos..]).ok_or(CodecError::BadVarint)?;
        self.pos += n;
        Ok(v)
    }

    fn varint_u32(&mut self) -> Result<u32, CodecError> {
        u32::try_from(self.varint()?).map_err(|_| CodecError::BadVarint)
    }

    fn varint_i64(&mut self) -> Result<i64, CodecError> {
        Ok(varint::unzigzag(self.varint()?))
    }

    fn varint_i32(&mut self) -> Result<i32, CodecError> {
        i32::try_from(self.varint_i64()?).map_err(|_| CodecError::BadVarint)
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        if len > self.remaining() {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_segment() -> TraceSegment {
        let topic = Topic::plain("/shared/topic");
        let mut seg = TraceSegment::with_index(7);
        seg.push_ros(RosEvent::new(
            Nanos::from_nanos(5),
            Pid::new(3),
            RosPayload::NodeInit { node_name: "fusion".into() },
        ));
        seg.push_ros(RosEvent::new(
            Nanos::from_nanos(9),
            Pid::new(3),
            RosPayload::CallbackStart { kind: CallbackKind::Subscriber },
        ));
        seg.push_ros(RosEvent::new(
            Nanos::from_nanos(9),
            Pid::new(3),
            RosPayload::TakeData {
                callback: CallbackId::new(0x2a),
                topic: topic.clone(),
                src_ts: SourceTimestamp::new(900),
            },
        ));
        seg.push_ros(RosEvent::new(
            Nanos::from_nanos(12),
            Pid::new(3),
            RosPayload::DdsWrite { topic, src_ts: SourceTimestamp::new(1200) },
        ));
        seg.push_ros(RosEvent::new(
            Nanos::from_nanos(14),
            Pid::new(3),
            RosPayload::CallbackEnd { kind: CallbackKind::Subscriber },
        ));
        seg.push_sched(SchedEvent::switch(
            Nanos::from_nanos(10),
            Cpu::new(1),
            Pid::new(3),
            Priority::new(-5),
            ThreadState::Sleeping,
            Pid::new(4),
            Priority::NORMAL,
        ));
        seg.push_sched(SchedEvent::wakeup(
            Nanos::from_nanos(11),
            Cpu::new(0),
            Pid::new(3),
            Priority::new(7),
        ));
        seg
    }

    fn round_trip(seg: &TraceSegment) -> (Vec<u8>, TraceSegment, Vec<Arc<str>>) {
        let mut dict = TopicInterner::new();
        let mut payload = Vec::new();
        encode_segment(seg, &mut dict, &mut payload);
        let decoded_dict: Vec<Arc<str>> = dict.entries().to_vec();
        let back = decode_segment(&payload, &decoded_dict).expect("decodes");
        (payload, back, decoded_dict)
    }

    #[test]
    fn segment_round_trips_exactly() {
        let seg = sample_segment();
        let (_, back, _) = round_trip(&seg);
        assert_eq!(back, seg);
    }

    #[test]
    fn decoded_topics_share_one_arc_per_name() {
        let seg = sample_segment();
        let (_, back, dict) = round_trip(&seg);
        assert_eq!(dict.len(), 1, "one distinct topic name, one dictionary entry");
        let mut arcs = Vec::new();
        for e in back.ros_events() {
            match &e.payload {
                RosPayload::TakeData { topic, .. } | RosPayload::DdsWrite { topic, .. } => {
                    arcs.push(Arc::clone(topic.name_arc()));
                }
                _ => {}
            }
        }
        assert_eq!(arcs.len(), 2);
        assert!(Arc::ptr_eq(&arcs[0], &arcs[1]), "decoded events share the dictionary entry");
        assert!(Arc::ptr_eq(&arcs[0], &dict[0]));
    }

    #[test]
    fn interner_is_pointer_fast_and_content_correct() {
        let mut dict = TopicInterner::new();
        let a: Arc<str> = Arc::from("/t");
        let b: Arc<str> = Arc::from("/t"); // equal content, distinct allocation
        let c: Arc<str> = Arc::from("/u");
        assert_eq!(dict.intern(&a), 0);
        assert_eq!(dict.intern(&a), 0);
        assert_eq!(dict.intern(&b), 0, "content dedup: written once per file");
        assert_eq!(dict.intern(&c), 1);
        assert_eq!(dict.entries().len(), 2);
        assert_eq!(dict.pending().len(), 2);
        dict.mark_flushed();
        assert!(dict.pending().is_empty());
    }

    #[test]
    fn dict_entries_round_trip() {
        let entries: Vec<Arc<str>> = vec![Arc::from("/a"), Arc::from("/b/c")];
        let mut payload = Vec::new();
        encode_dict_entries(&entries, &mut payload);
        let mut dict = Vec::new();
        decode_dict_entries(&payload, &mut dict).expect("decodes");
        assert_eq!(dict, entries);
    }

    #[test]
    fn unknown_tag_is_typed() {
        let payload = [0u8 /* index */, 1 /* ros */, 0 /* sched */, 0x7f, 0, 0];
        match decode_segment(&payload, &[]) {
            Err(CodecError::BadTag(0x7f)) => {}
            other => panic!("expected BadTag, got {other:?}"),
        }
    }

    #[test]
    fn dangling_topic_ref_is_typed() {
        let seg = sample_segment();
        let mut dict = TopicInterner::new();
        let mut payload = Vec::new();
        encode_segment(&seg, &mut dict, &mut payload);
        match decode_segment(&payload, &[]) {
            Err(CodecError::BadTopicRef(_)) => {}
            other => panic!("expected BadTopicRef, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_typed() {
        let seg = sample_segment();
        let mut dict = TopicInterner::new();
        let mut payload = Vec::new();
        encode_segment(&seg, &mut dict, &mut payload);
        let dict: Vec<Arc<str>> = dict.entries().to_vec();
        for cut in 1..payload.len() {
            let err = decode_segment(&payload[..cut], &dict)
                .expect_err("every proper prefix must fail");
            assert!(
                matches!(
                    err,
                    CodecError::Truncated | CodecError::BadVarint | CodecError::BadCount { .. }
                ),
                "prefix {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn absurd_count_is_rejected_before_allocating() {
        // index 0, claims 2^40 ROS events in a 3-byte payload.
        let mut payload = vec![0u8];
        rtms_util::varint::write_u64(&mut payload, 1 << 40);
        rtms_util::varint::write_u64(&mut payload, 0);
        match decode_segment(&payload, &[]) {
            Err(CodecError::BadCount { count, .. }) => assert_eq!(count, 1 << 40),
            other => panic!("expected BadCount, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let seg = sample_segment();
        let mut dict = TopicInterner::new();
        let mut payload = Vec::new();
        encode_segment(&seg, &mut dict, &mut payload);
        payload.push(0x00);
        let dict: Vec<Arc<str>> = dict.entries().to_vec();
        assert!(matches!(decode_segment(&payload, &dict), Err(CodecError::Truncated)));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn reused_segment_buffer_is_fully_overwritten() {
        let seg = sample_segment();
        let mut dict = TopicInterner::new();
        let mut payload = Vec::new();
        encode_segment(&seg, &mut dict, &mut payload);
        let dict: Vec<Arc<str>> = dict.entries().to_vec();
        let mut reused = TraceSegment::with_index(99);
        reused.push_ros(RosEvent::new(
            Nanos::from_nanos(1),
            Pid::new(1),
            RosPayload::SyncSubscribe,
        ));
        decode_segment_into(&payload, &dict, &mut reused).expect("decodes");
        assert_eq!(reused, seg, "stale contents must not survive");
    }
}
