//! File-backed trace storage — the "trace database" of Fig. 2.
//!
//! Segments collected by the tracers are stored as JSON files in a
//! directory tree (`<root>/<mode-or-default>/<session>/<segment>.json`) and
//! can be reloaded into a [`TraceDatabase`] for later (or distributed)
//! model synthesis.

use crate::session::{TraceDatabase, TraceSession};
use crate::trace::Trace;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Errors from the trace store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A stored segment could not be parsed.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// The parse failure.
        source: serde_json::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trace store I/O failure: {e}"),
            StoreError::Corrupt { path, source } => {
                write!(f, "corrupt trace segment {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { source, .. } => Some(source),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Directory name used for sessions without a mode tag.
const DEFAULT_MODE_DIR: &str = "_default";

/// A directory-backed trace database.
///
/// # Example
///
/// ```no_run
/// use rtms_trace::{Trace, TraceSession, store::TraceStore};
///
/// let store = TraceStore::open("/var/traces/avp")?;
/// let mut session = TraceSession::new("run-07");
/// session.push_segment(Trace::new());
/// store.save_session(None, &session)?;
/// let db = store.load()?;
/// assert_eq!(db.len(), 1);
/// # Ok::<(), rtms_trace::store::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceStore {
    root: PathBuf,
}

impl TraceStore {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<TraceStore, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(TraceStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Persists one session (all its segments) under the given mode tag.
    ///
    /// # Errors
    ///
    /// Returns an error on any filesystem or serialization failure.
    pub fn save_session(
        &self,
        mode: Option<&str>,
        session: &TraceSession,
    ) -> Result<(), StoreError> {
        let dir = self
            .root
            .join(mode.unwrap_or(DEFAULT_MODE_DIR))
            .join(session.label());
        fs::create_dir_all(&dir)?;
        for (i, segment) in session.segments().iter().enumerate() {
            let path = dir.join(format!("segment-{i:04}.json"));
            let json = segment.to_json().map_err(|source| StoreError::Corrupt {
                path: path.clone(),
                source,
            })?;
            fs::write(&path, json)?;
        }
        Ok(())
    }

    /// Loads every stored session into a [`TraceDatabase`], restoring mode
    /// tags.
    ///
    /// # Errors
    ///
    /// Returns an error on filesystem failures or corrupt segments.
    pub fn load(&self) -> Result<TraceDatabase, StoreError> {
        let mut db = TraceDatabase::new();
        let mut mode_dirs: Vec<PathBuf> = fs::read_dir(&self.root)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        mode_dirs.sort();
        for mode_dir in mode_dirs {
            let mode_name = mode_dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or(DEFAULT_MODE_DIR)
                .to_string();
            let mut session_dirs: Vec<PathBuf> = fs::read_dir(&mode_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            session_dirs.sort();
            for session_dir in session_dirs {
                let label = session_dir
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("unnamed")
                    .to_string();
                let mut session = TraceSession::new(label);
                let mut segment_files: Vec<PathBuf> = fs::read_dir(&session_dir)?
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "json"))
                    .collect();
                segment_files.sort();
                for path in segment_files {
                    let json = fs::read_to_string(&path)?;
                    let segment = Trace::from_json(&json)
                        .map_err(|source| StoreError::Corrupt { path: path.clone(), source })?;
                    session.push_segment(segment);
                }
                if mode_name == DEFAULT_MODE_DIR {
                    db.insert(session);
                } else {
                    db.insert_with_mode(mode_name.clone(), session);
                }
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CallbackKind, RosPayload};
    use crate::ids::Pid;
    use crate::time::Nanos;
    use crate::RosEvent;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rtms-trace-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn segment(t: u64) -> Trace {
        let mut tr = Trace::new();
        tr.push_ros(RosEvent::new(
            Nanos::from_millis(t),
            Pid::new(1),
            RosPayload::CallbackStart { kind: CallbackKind::Timer },
        ));
        tr
    }

    #[test]
    fn save_and_load_round_trip() {
        let root = tmp_root("roundtrip");
        let store = TraceStore::open(&root).expect("open");
        let mut s1 = TraceSession::new("run-1");
        s1.push_segment(segment(1));
        s1.push_segment(segment(2));
        store.save_session(None, &s1).expect("save");
        let mut s2 = TraceSession::new("run-2");
        s2.push_segment(segment(3));
        store.save_session(Some("city"), &s2).expect("save");

        let db = store.load().expect("load");
        assert_eq!(db.len(), 2);
        assert_eq!(db.modes(), vec!["city"]);
        let city: Vec<_> = db.sessions_for_mode("city").collect();
        assert_eq!(city.len(), 1);
        assert_eq!(city[0].segments().len(), 1);
        let all = db.merged_all();
        assert_eq!(all.ros_events().len(), 3);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_segment_reported_with_path() {
        let root = tmp_root("corrupt");
        let store = TraceStore::open(&root).expect("open");
        let dir = root.join("_default").join("bad");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("segment-0000.json"), "{not json").expect("write");
        match store.load() {
            Err(StoreError::Corrupt { path, .. }) => {
                assert!(path.to_string_lossy().contains("segment-0000.json"));
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_store_loads_empty_database() {
        let root = tmp_root("empty");
        let store = TraceStore::open(&root).expect("open");
        let db = store.load().expect("load");
        assert!(db.is_empty());
        let _ = fs::remove_dir_all(&root);
    }
}
