//! File-backed trace storage — the "trace database" of Fig. 2.
//!
//! Two stores live here:
//!
//! - [`TraceStore`] — the original JSON directory tree
//!   (`<root>/<mode-or-default>/<session>/<segment>.json`), human-readable
//!   and archival.
//! - [`SegmentWriter`]/[`SegmentReader`]/[`IndexedSegmentFile`] — the
//!   compact binary segment-file container built on
//!   [`crate::codec`]: one file per run, topic names written once through
//!   the interning dictionary, every frame length-prefixed and
//!   CRC-32-checked, with a seekable index at the end. This is the
//!   record-once-replay-many format (`docs/TRACE_FORMAT.md`): a
//!   `Ros2World` can record straight to disk through the
//!   [`crate::EventSink`] impl, and a synthesis session can replay
//!   straight from the reader at far beyond collection speed.

use crate::codec::{self, CodecError, TopicInterner};
use crate::session::{TraceDatabase, TraceSession};
use crate::sink::{EventSink, OwnedSegmentEvent, TraceSegment};
use crate::trace::Trace;
use crate::{RosEvent, SchedEvent};
use serde::Serialize;
use std::fmt;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors from the trace store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A stored segment could not be parsed.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// The parse failure.
        source: serde_json::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trace store I/O failure: {e}"),
            StoreError::Corrupt { path, source } => {
                write!(f, "corrupt trace segment {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Corrupt { source, .. } => Some(source),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Directory name used for sessions without a mode tag.
const DEFAULT_MODE_DIR: &str = "_default";

/// A directory-backed trace database.
///
/// # Example
///
/// ```no_run
/// use rtms_trace::{Trace, TraceSession, store::TraceStore};
///
/// let store = TraceStore::open("/var/traces/avp")?;
/// let mut session = TraceSession::new("run-07");
/// session.push_segment(Trace::new());
/// store.save_session(None, &session)?;
/// let db = store.load()?;
/// assert_eq!(db.len(), 1);
/// # Ok::<(), rtms_trace::store::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceStore {
    root: PathBuf,
}

impl TraceStore {
    /// Opens (creating if necessary) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<TraceStore, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(TraceStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Persists one session (all its segments) under the given mode tag.
    ///
    /// # Errors
    ///
    /// Returns an error on any filesystem or serialization failure.
    pub fn save_session(
        &self,
        mode: Option<&str>,
        session: &TraceSession,
    ) -> Result<(), StoreError> {
        let dir = self
            .root
            .join(mode.unwrap_or(DEFAULT_MODE_DIR))
            .join(session.label());
        fs::create_dir_all(&dir)?;
        for (i, segment) in session.segments().iter().enumerate() {
            let path = dir.join(format!("segment-{i:04}.json"));
            let json = segment.to_json().map_err(|source| StoreError::Corrupt {
                path: path.clone(),
                source,
            })?;
            fs::write(&path, json)?;
        }
        Ok(())
    }

    /// Loads every stored session into a [`TraceDatabase`], restoring mode
    /// tags.
    ///
    /// # Errors
    ///
    /// Returns an error on filesystem failures or corrupt segments.
    pub fn load(&self) -> Result<TraceDatabase, StoreError> {
        let mut db = TraceDatabase::new();
        let mut mode_dirs: Vec<PathBuf> = fs::read_dir(&self.root)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        mode_dirs.sort();
        for mode_dir in mode_dirs {
            let mode_name = mode_dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or(DEFAULT_MODE_DIR)
                .to_string();
            let mut session_dirs: Vec<PathBuf> = fs::read_dir(&mode_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            session_dirs.sort();
            for session_dir in session_dirs {
                let label = session_dir
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or("unnamed")
                    .to_string();
                let mut session = TraceSession::new(label);
                let mut segment_files: Vec<PathBuf> = fs::read_dir(&session_dir)?
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "json"))
                    .collect();
                segment_files.sort();
                for path in segment_files {
                    let json = fs::read_to_string(&path)?;
                    let segment = Trace::from_json(&json)
                        .map_err(|source| StoreError::Corrupt { path: path.clone(), source })?;
                    session.push_segment(segment);
                }
                if mode_name == DEFAULT_MODE_DIR {
                    db.insert(session);
                } else {
                    db.insert_with_mode(mode_name.clone(), session);
                }
            }
        }
        Ok(db)
    }
}

// ---------------------------------------------------------------------------
// Binary segment files
// ---------------------------------------------------------------------------

/// File magic: the first eight bytes of every segment file.
pub const SEGMENT_FILE_MAGIC: [u8; 8] = *b"RTMS-SEG";
/// Trailer magic: the last eight bytes of a finished segment file.
pub const SEGMENT_TRAILER_MAGIC: [u8; 8] = *b"RTMS-IDX";
/// Current format version. Readers reject newer versions; see
/// `docs/TRACE_FORMAT.md` for the versioning rules.
pub const SEGMENT_FILE_VERSION: u16 = 1;

/// Hard cap on a frame payload. Real segment frames are a few hundred KB;
/// the cap exists so a corrupt length field cannot balloon an allocation.
const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

const FRAME_DICT: u8 = 1;
const FRAME_SEGMENT: u8 = 2;
const FRAME_INDEX: u8 = 3;
const FRAME_META: u8 = 4;

/// The frame checksum: CRC-32 chained over the kind byte, the
/// little-endian length field, and the payload. Covering the header too
/// means a flipped bit that re-routes a frame (kind) or re-sizes it
/// (length) fails the checksum just like payload corruption does.
fn frame_crc(kind: u8, len: u32, payload: &[u8]) -> u32 {
    let state = codec::crc32_update(u32::MAX, &[kind]);
    let state = codec::crc32_update(state, &len.to_le_bytes());
    !codec::crc32_update(state, payload)
}

/// Byte size of the fixed trailer: index offset (u64 LE) + trailer magic.
const TRAILER_LEN: u64 = 16;

/// One index entry: where a segment frame lives and what it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SegmentIndexEntry {
    /// Byte offset of the frame's kind byte from the start of the file.
    pub offset: u64,
    /// The segment's run index (as written by the producer).
    pub segment_index: u64,
    /// Total events (both streams) in the segment.
    pub events: u64,
}

/// Summary statistics returned by [`SegmentWriter::finish`].
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SegmentFileStats {
    /// Number of segment frames written.
    pub segments: usize,
    /// Total events across all segments.
    pub events: u64,
    /// Total file size in bytes, header to trailer.
    pub bytes: u64,
    /// Number of distinct topic names in the dictionary.
    pub topics: usize,
}

/// Streaming writer for the binary segment-file container.
///
/// Two ways in, freely mixable with the same file contract:
///
/// - [`SegmentWriter::write_segment`] stores an already-collected
///   [`TraceSegment`] verbatim — what `Ros2World::record_segments` calls
///   once per stop/store/restart cycle.
/// - The [`EventSink`] impl buffers pushed events;
///   [`SegmentWriter::end_segment`] sorts the buffer chronologically
///   (matching the live `trace_segments` segment contract) and stores it
///   as the next segment. This is the `trace_into(&mut writer, ..)` path.
///
/// Call [`SegmentWriter::finish`] to write the index frame and trailer —
/// a file without them is treated as truncated by readers.
///
/// # Example
///
/// ```
/// use rtms_trace::{SegmentReader, SegmentWriter, TraceSegment};
///
/// let mut writer = SegmentWriter::new(Vec::new())?;
/// writer.write_segment(&TraceSegment::new())?;
/// let (file, stats) = writer.finish()?;
/// assert_eq!(stats.segments, 1);
/// let mut reader = SegmentReader::new(file.as_slice())?;
/// assert!(reader.read_segment()?.is_some());
/// assert!(reader.read_segment()?.is_none());
/// # Ok::<(), rtms_trace::CodecError>(())
/// ```
#[derive(Debug)]
pub struct SegmentWriter<W: Write> {
    inner: W,
    dict: TopicInterner,
    scratch: Vec<u8>,
    pending: TraceSegment,
    offset: u64,
    dict_offsets: Vec<u64>,
    entries: Vec<SegmentIndexEntry>,
    events: u64,
    meta_written: bool,
}

impl SegmentWriter<io::BufWriter<fs::File>> {
    /// Creates a segment file at `path` (truncating any existing file).
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be created or the header
    /// cannot be written.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, CodecError> {
        SegmentWriter::new(io::BufWriter::new(fs::File::create(path)?))
    }
}

impl<W: Write> SegmentWriter<W> {
    /// Wraps a byte sink and writes the file header.
    ///
    /// # Errors
    ///
    /// Returns an error if the header cannot be written.
    pub fn new(mut inner: W) -> Result<Self, CodecError> {
        inner.write_all(&SEGMENT_FILE_MAGIC)?;
        inner.write_all(&SEGMENT_FILE_VERSION.to_le_bytes())?;
        inner.write_all(&0u16.to_le_bytes())?; // reserved
        Ok(SegmentWriter {
            inner,
            dict: TopicInterner::new(),
            scratch: Vec::new(),
            pending: TraceSegment::new(),
            offset: 12,
            dict_offsets: Vec::new(),
            entries: Vec::new(),
            events: 0,
            meta_written: false,
        })
    }

    /// Attaches a free-form UTF-8 metadata blob (conventionally JSON
    /// describing how the trace was produced — see the `record`
    /// experiment binary). At most one per file.
    ///
    /// # Errors
    ///
    /// Returns an error if called twice, or on write failure.
    pub fn set_meta(&mut self, meta: &str) -> Result<(), CodecError> {
        if self.meta_written {
            return Err(CodecError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "meta frame already written",
            )));
        }
        self.meta_written = true;
        self.write_frame(FRAME_META, meta.as_bytes().to_vec())
    }

    /// Stores one segment verbatim, preceded (if needed) by a dictionary
    /// frame holding any topic names this segment introduces.
    ///
    /// # Errors
    ///
    /// Returns an error on write failure.
    pub fn write_segment(&mut self, segment: &TraceSegment) -> Result<(), CodecError> {
        let mut payload = std::mem::take(&mut self.scratch);
        payload.clear();
        codec::encode_segment(segment, &mut self.dict, &mut payload);
        if !self.dict.pending().is_empty() {
            let mut dict_payload = Vec::new();
            codec::encode_dict_entries(self.dict.pending(), &mut dict_payload);
            self.dict.mark_flushed();
            self.dict_offsets.push(self.offset);
            self.write_frame(FRAME_DICT, dict_payload)?;
        }
        self.entries.push(SegmentIndexEntry {
            offset: self.offset,
            segment_index: segment.index() as u64,
            events: segment.len() as u64,
        });
        self.events += segment.len() as u64;
        // `write_frame` hands segment payload buffers back to `scratch`,
        // so steady-state recording reuses one encode buffer.
        self.write_frame(FRAME_SEGMENT, payload)
    }

    /// Closes the segment being assembled through the [`EventSink`]
    /// interface: sorts the buffered events chronologically (the same
    /// stable per-stream sort the live `trace_segments` flow applies) and
    /// stores them as the next segment in run order. A no-op returning
    /// `Ok(0)` if nothing was pushed since the last call.
    ///
    /// # Errors
    ///
    /// Returns an error on write failure.
    pub fn end_segment(&mut self) -> Result<usize, CodecError> {
        if self.pending.is_empty() {
            return Ok(0);
        }
        let mut segment = std::mem::take(&mut self.pending);
        segment.set_index(self.entries.len());
        segment.sort_by_time();
        let events = segment.len();
        self.write_segment(&segment)?;
        segment.clear();
        self.pending = segment; // keep the buffers' capacity
        Ok(events)
    }

    /// Writes the index frame and trailer, flushes, and returns the inner
    /// sink with the file statistics. Any events still buffered through
    /// the sink interface are stored first (as by
    /// [`SegmentWriter::end_segment`]).
    ///
    /// # Errors
    ///
    /// Returns an error on write failure.
    pub fn finish(mut self) -> Result<(W, SegmentFileStats), CodecError> {
        self.end_segment()?;
        let index_offset = self.offset;
        let mut payload = Vec::new();
        rtms_util::varint::write_u64(&mut payload, self.dict_offsets.len() as u64);
        for &off in &self.dict_offsets {
            rtms_util::varint::write_u64(&mut payload, off);
        }
        rtms_util::varint::write_u64(&mut payload, self.entries.len() as u64);
        for e in &self.entries {
            rtms_util::varint::write_u64(&mut payload, e.offset);
            rtms_util::varint::write_u64(&mut payload, e.segment_index);
            rtms_util::varint::write_u64(&mut payload, e.events);
        }
        self.write_frame(FRAME_INDEX, payload)?;
        self.inner.write_all(&index_offset.to_le_bytes())?;
        self.inner.write_all(&SEGMENT_TRAILER_MAGIC)?;
        self.offset += TRAILER_LEN;
        self.inner.flush()?;
        let stats = SegmentFileStats {
            segments: self.entries.len(),
            events: self.events,
            bytes: self.offset,
            topics: self.dict.entries().len(),
        };
        Ok((self.inner, stats))
    }

    /// Number of segment frames written so far.
    pub fn segments_written(&self) -> usize {
        self.entries.len()
    }

    /// Total events written so far (not counting the sink buffer).
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Bytes written so far (header and frames; the trailer is added by
    /// [`SegmentWriter::finish`]).
    pub fn bytes_written(&self) -> u64 {
        self.offset
    }

    fn write_frame(&mut self, kind: u8, payload: Vec<u8>) -> Result<(), CodecError> {
        let len = u32::try_from(payload.len()).map_err(|_| CodecError::BadLength {
            len: payload.len() as u64,
            max: u64::from(MAX_FRAME_LEN),
        })?;
        if len > MAX_FRAME_LEN {
            return Err(CodecError::BadLength { len: u64::from(len), max: u64::from(MAX_FRAME_LEN) });
        }
        self.inner.write_all(&[kind])?;
        self.inner.write_all(&len.to_le_bytes())?;
        self.inner.write_all(&payload)?;
        self.inner.write_all(&frame_crc(kind, len, &payload).to_le_bytes())?;
        self.offset += 1 + 4 + u64::from(len) + 4;
        if kind == FRAME_SEGMENT {
            self.scratch = payload;
        }
        Ok(())
    }
}

impl<W: Write> EventSink for SegmentWriter<W> {
    fn push_ros(&mut self, event: RosEvent) {
        self.pending.push_ros(event);
    }
    fn push_sched(&mut self, event: SchedEvent) {
        self.pending.push_sched(event);
    }
}

/// Sequential reader for the binary segment-file container: yields the
/// stored segments in file order, maintaining the topic dictionary as
/// dictionary frames stream past.
///
/// The reader is strict: every frame's CRC is verified, and reaching
/// end-of-input without the index frame is an error
/// ([`CodecError::MissingIndex`]) — per-frame checksums cannot catch a
/// file truncated exactly at a frame boundary, the trailer can.
///
/// Also an [`Iterator`] over `Result<TraceSegment, CodecError>`.
#[derive(Debug)]
pub struct SegmentReader<R: Read> {
    inner: R,
    dict: Vec<Arc<str>>,
    payload: Vec<u8>,
    meta: Option<String>,
    finished: bool,
}

impl SegmentReader<io::BufReader<fs::File>> {
    /// Opens a segment file for sequential reading.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be opened or its header is not
    /// a supported segment-file header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CodecError> {
        SegmentReader::new(io::BufReader::new(fs::File::open(path)?))
    }
}

impl<R: Read> SegmentReader<R> {
    /// Wraps a byte source and validates the file header.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadMagic`] /
    /// [`CodecError::UnsupportedVersion`] for foreign input, or an I/O
    /// error.
    pub fn new(mut inner: R) -> Result<Self, CodecError> {
        let mut header = [0u8; 12];
        inner
            .read_exact(&mut header)
            .map_err(|e| map_eof(e, CodecError::BadMagic))?;
        if header[..8] != SEGMENT_FILE_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != SEGMENT_FILE_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        Ok(SegmentReader {
            inner,
            dict: Vec::new(),
            payload: Vec::new(),
            meta: None,
            finished: false,
        })
    }

    /// The metadata blob, if a meta frame has streamed past yet.
    pub fn meta(&self) -> Option<&str> {
        self.meta.as_deref()
    }

    /// The topic dictionary accumulated so far.
    pub fn topics(&self) -> &[Arc<str>] {
        &self.dict
    }

    /// Reads the next stored segment, or `None` after the index frame.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CodecError`] on any corruption, truncation, or
    /// I/O failure.
    pub fn read_segment(&mut self) -> Result<Option<TraceSegment>, CodecError> {
        let mut segment = TraceSegment::new();
        Ok(self.read_segment_into(&mut segment)?.then_some(segment))
    }

    /// Reads the next stored segment into an existing buffer, returning
    /// `false` (leaving the buffer cleared) after the index frame. This
    /// is the replay hot path: one segment allocation serves the whole
    /// file.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CodecError`] on any corruption, truncation, or
    /// I/O failure.
    pub fn read_segment_into(&mut self, segment: &mut TraceSegment) -> Result<bool, CodecError> {
        segment.clear();
        if self.finished {
            return Ok(false);
        }
        loop {
            let (kind, payload_len) = self.read_frame()?;
            let payload = &self.payload[..payload_len];
            match kind {
                FRAME_DICT => codec::decode_dict_entries(payload, &mut self.dict)?,
                FRAME_META => {
                    let text =
                        std::str::from_utf8(payload).map_err(|_| CodecError::BadUtf8)?;
                    self.meta = Some(text.to_string());
                }
                FRAME_SEGMENT => {
                    codec::decode_segment_into(payload, &self.dict, segment)?;
                    return Ok(true);
                }
                FRAME_INDEX => {
                    self.finished = true;
                    return Ok(false);
                }
                k => return Err(CodecError::BadFrameKind(k)),
            }
        }
    }

    /// Streams the next segment's events into `f`, in on-disk (merged
    /// chronological) order, without materializing a [`TraceSegment`] —
    /// the fused decode path `SynthesisSession::feed_reader` replays
    /// through. Returns the segment's `(run_index, event_count)`, or
    /// `None` once the index frame is reached.
    ///
    /// # Errors
    ///
    /// Same failure surface as [`SegmentReader::read_segment`]; events
    /// already handed to `f` before a mid-frame decode error stay
    /// delivered.
    pub fn next_segment_events<F: FnMut(OwnedSegmentEvent)>(
        &mut self,
        f: F,
    ) -> Result<Option<(usize, usize)>, CodecError> {
        if self.finished {
            return Ok(None);
        }
        loop {
            let (kind, payload_len) = self.read_frame()?;
            let payload = &self.payload[..payload_len];
            match kind {
                FRAME_DICT => codec::decode_dict_entries(payload, &mut self.dict)?,
                FRAME_META => {
                    let text =
                        std::str::from_utf8(payload).map_err(|_| CodecError::BadUtf8)?;
                    self.meta = Some(text.to_string());
                }
                FRAME_SEGMENT => {
                    return codec::decode_segment_events(payload, &self.dict, f).map(Some);
                }
                FRAME_INDEX => {
                    self.finished = true;
                    return Ok(None);
                }
                k => return Err(CodecError::BadFrameKind(k)),
            }
        }
    }

    /// Reads one frame into `self.payload`, verifying length cap and CRC.
    /// Returns the frame kind and payload length.
    fn read_frame(&mut self) -> Result<(u8, usize), CodecError> {
        let mut kind = [0u8; 1];
        self.inner
            .read_exact(&mut kind)
            .map_err(|e| map_eof(e, CodecError::MissingIndex))?;
        let mut len_bytes = [0u8; 4];
        self.inner
            .read_exact(&mut len_bytes)
            .map_err(|e| map_eof(e, CodecError::Truncated))?;
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            return Err(CodecError::BadLength { len: u64::from(len), max: u64::from(MAX_FRAME_LEN) });
        }
        // `take` + `read_to_end` grows the buffer only as bytes actually
        // arrive, so a corrupt length cannot force a huge allocation.
        self.payload.clear();
        let got = self
            .inner
            .by_ref()
            .take(u64::from(len))
            .read_to_end(&mut self.payload)?;
        if got < len as usize {
            return Err(CodecError::Truncated);
        }
        let mut crc_bytes = [0u8; 4];
        self.inner
            .read_exact(&mut crc_bytes)
            .map_err(|e| map_eof(e, CodecError::Truncated))?;
        if frame_crc(kind[0], len, &self.payload) != u32::from_le_bytes(crc_bytes) {
            return Err(CodecError::ChecksumMismatch);
        }
        Ok((kind[0], len as usize))
    }
}

impl<R: Read> Iterator for SegmentReader<R> {
    type Item = Result<TraceSegment, CodecError>;

    fn next(&mut self) -> Option<Result<TraceSegment, CodecError>> {
        self.read_segment().transpose()
    }
}

fn map_eof(e: io::Error, at_boundary: CodecError) -> CodecError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        at_boundary
    } else {
        CodecError::Io(e)
    }
}

/// Random-access reader over a *finished* segment file: loads the trailer,
/// the index frame, and every dictionary frame up front, then serves any
/// segment by position with one seek + one frame read.
///
/// # Example
///
/// ```no_run
/// use rtms_trace::IndexedSegmentFile;
///
/// let mut file = IndexedSegmentFile::open("/var/traces/run.seg")?;
/// let last = file.len() - 1;
/// let segment = file.read_segment(last)?;
/// println!("{} events in the final segment", segment.len());
/// # Ok::<(), rtms_trace::CodecError>(())
/// ```
#[derive(Debug)]
pub struct IndexedSegmentFile<R: Read + Seek = io::BufReader<fs::File>> {
    inner: R,
    dict: Vec<Arc<str>>,
    entries: Vec<SegmentIndexEntry>,
    payload: Vec<u8>,
}

impl IndexedSegmentFile<io::BufReader<fs::File>> {
    /// Opens a finished segment file.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be opened, is not a finished
    /// segment file, or its index/dictionary frames are corrupt.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CodecError> {
        IndexedSegmentFile::new(io::BufReader::new(fs::File::open(path)?))
    }
}

impl<R: Read + Seek> IndexedSegmentFile<R> {
    /// Wraps a seekable byte source holding a finished segment file.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CodecError`] if the header, trailer, index
    /// frame, or any dictionary frame is missing or corrupt.
    pub fn new(mut inner: R) -> Result<Self, CodecError> {
        // Header.
        let mut header = [0u8; 12];
        inner.seek(SeekFrom::Start(0))?;
        inner
            .read_exact(&mut header)
            .map_err(|e| map_eof(e, CodecError::BadMagic))?;
        if header[..8] != SEGMENT_FILE_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = u16::from_le_bytes([header[8], header[9]]);
        if version != SEGMENT_FILE_VERSION {
            return Err(CodecError::UnsupportedVersion(version));
        }
        // Trailer.
        let file_len = inner.seek(SeekFrom::End(0))?;
        if file_len < 12 + TRAILER_LEN {
            return Err(CodecError::MissingIndex);
        }
        inner.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        let mut trailer = [0u8; 16];
        inner
            .read_exact(&mut trailer)
            .map_err(|e| map_eof(e, CodecError::MissingIndex))?;
        if trailer[8..] != SEGMENT_TRAILER_MAGIC {
            return Err(CodecError::MissingIndex);
        }
        let index_offset = u64::from_le_bytes(trailer[..8].try_into().expect("8 bytes"));
        if index_offset >= file_len - TRAILER_LEN {
            return Err(CodecError::MissingIndex);
        }
        let mut this = IndexedSegmentFile {
            inner,
            dict: Vec::new(),
            entries: Vec::new(),
            payload: Vec::new(),
        };
        // Index frame.
        let (kind, len) = this.read_frame_at(index_offset)?;
        if kind != FRAME_INDEX {
            return Err(CodecError::BadFrameKind(kind));
        }
        let payload = std::mem::take(&mut this.payload);
        let (dict_offsets, entries) = parse_index(&payload[..len])?;
        this.entries = entries;
        this.payload = payload;
        // Dictionary frames, in file order.
        for off in dict_offsets {
            let (kind, len) = this.read_frame_at(off)?;
            if kind != FRAME_DICT {
                return Err(CodecError::BadFrameKind(kind));
            }
            let payload = std::mem::take(&mut this.payload);
            codec::decode_dict_entries(&payload[..len], &mut this.dict)?;
            this.payload = payload;
        }
        Ok(this)
    }

    /// Number of stored segments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the file stores no segments.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The index entries, in file order.
    pub fn entries(&self) -> &[SegmentIndexEntry] {
        &self.entries
    }

    /// The complete topic dictionary.
    pub fn topics(&self) -> &[Arc<str>] {
        &self.dict
    }

    /// Reads the `i`-th stored segment (by file position).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CodecError`] on corruption or I/O failure.
    pub fn read_segment(&mut self, i: usize) -> Result<TraceSegment, CodecError> {
        let offset = self.entries[i].offset;
        let (kind, len) = self.read_frame_at(offset)?;
        if kind != FRAME_SEGMENT {
            return Err(CodecError::BadFrameKind(kind));
        }
        let payload = std::mem::take(&mut self.payload);
        let result = codec::decode_segment(&payload[..len], &self.dict);
        self.payload = payload;
        result
    }

    fn read_frame_at(&mut self, offset: u64) -> Result<(u8, usize), CodecError> {
        self.inner.seek(SeekFrom::Start(offset))?;
        let mut kind = [0u8; 1];
        self.inner
            .read_exact(&mut kind)
            .map_err(|e| map_eof(e, CodecError::Truncated))?;
        let mut len_bytes = [0u8; 4];
        self.inner
            .read_exact(&mut len_bytes)
            .map_err(|e| map_eof(e, CodecError::Truncated))?;
        let len = u32::from_le_bytes(len_bytes);
        if len > MAX_FRAME_LEN {
            return Err(CodecError::BadLength { len: u64::from(len), max: u64::from(MAX_FRAME_LEN) });
        }
        self.payload.clear();
        let got = self
            .inner
            .by_ref()
            .take(u64::from(len))
            .read_to_end(&mut self.payload)?;
        if got < len as usize {
            return Err(CodecError::Truncated);
        }
        let mut crc_bytes = [0u8; 4];
        self.inner
            .read_exact(&mut crc_bytes)
            .map_err(|e| map_eof(e, CodecError::Truncated))?;
        if frame_crc(kind[0], len, &self.payload) != u32::from_le_bytes(crc_bytes) {
            return Err(CodecError::ChecksumMismatch);
        }
        Ok((kind[0], len as usize))
    }

}

/// Parses an index-frame payload into `(dict offsets, segment entries)`.
/// Counts are validated against the remaining byte budget before any
/// allocation sized from them (each listed item costs ≥1 byte).
fn parse_index(payload: &[u8]) -> Result<(Vec<u64>, Vec<SegmentIndexEntry>), CodecError> {
    fn next(payload: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
        let (v, n) =
            rtms_util::varint::read_u64(&payload[*pos..]).ok_or(CodecError::BadVarint)?;
        *pos += n;
        Ok(v)
    }
    let mut pos = 0usize;
    let dict_count = next(payload, &mut pos)?;
    let budget = (payload.len() - pos) as u64;
    if dict_count > budget {
        return Err(CodecError::BadCount { count: dict_count, budget });
    }
    let mut dict_offsets = Vec::with_capacity(dict_count as usize);
    for _ in 0..dict_count {
        dict_offsets.push(next(payload, &mut pos)?);
    }
    let seg_count = next(payload, &mut pos)?;
    let budget = (payload.len() - pos) as u64 / 3;
    if seg_count > budget {
        return Err(CodecError::BadCount { count: seg_count, budget });
    }
    let mut entries = Vec::with_capacity(seg_count as usize);
    for _ in 0..seg_count {
        let offset = next(payload, &mut pos)?;
        let segment_index = next(payload, &mut pos)?;
        let events = next(payload, &mut pos)?;
        entries.push(SegmentIndexEntry { offset, segment_index, events });
    }
    if pos != payload.len() {
        return Err(CodecError::Truncated);
    }
    Ok((dict_offsets, entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CallbackKind, RosPayload};
    use crate::ids::Pid;
    use crate::time::Nanos;
    use crate::RosEvent;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rtms-trace-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn segment(t: u64) -> Trace {
        let mut tr = Trace::new();
        tr.push_ros(RosEvent::new(
            Nanos::from_millis(t),
            Pid::new(1),
            RosPayload::CallbackStart { kind: CallbackKind::Timer },
        ));
        tr
    }

    #[test]
    fn save_and_load_round_trip() {
        let root = tmp_root("roundtrip");
        let store = TraceStore::open(&root).expect("open");
        let mut s1 = TraceSession::new("run-1");
        s1.push_segment(segment(1));
        s1.push_segment(segment(2));
        store.save_session(None, &s1).expect("save");
        let mut s2 = TraceSession::new("run-2");
        s2.push_segment(segment(3));
        store.save_session(Some("city"), &s2).expect("save");

        let db = store.load().expect("load");
        assert_eq!(db.len(), 2);
        assert_eq!(db.modes(), vec!["city"]);
        let city: Vec<_> = db.sessions_for_mode("city").collect();
        assert_eq!(city.len(), 1);
        assert_eq!(city[0].segments().len(), 1);
        let all = db.merged_all();
        assert_eq!(all.ros_events().len(), 3);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_segment_reported_with_path() {
        let root = tmp_root("corrupt");
        let store = TraceStore::open(&root).expect("open");
        let dir = root.join("_default").join("bad");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("segment-0000.json"), "{not json").expect("write");
        match store.load() {
            Err(StoreError::Corrupt { path, .. }) => {
                assert!(path.to_string_lossy().contains("segment-0000.json"));
            }
            other => panic!("expected corrupt error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_store_loads_empty_database() {
        let root = tmp_root("empty");
        let store = TraceStore::open(&root).expect("open");
        let db = store.load().expect("load");
        assert!(db.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    // -- binary segment files ----------------------------------------------

    use crate::ids::{CallbackId, Cpu, Priority};
    use crate::sched_event::ThreadState;
    use crate::topic::{SourceTimestamp, Topic};
    use crate::SchedEvent;

    fn sample_segment(index: usize, base: u64) -> TraceSegment {
        let mut seg = TraceSegment::with_index(index);
        seg.push_ros(RosEvent::new(
            Nanos::from_nanos(base),
            Pid::new(7),
            RosPayload::DdsWrite {
                topic: Topic::plain("/lidar/points"),
                src_ts: SourceTimestamp::new(base + 1),
            },
        ));
        seg.push_ros(RosEvent::new(
            Nanos::from_nanos(base + 2),
            Pid::new(7),
            RosPayload::TakeData {
                callback: CallbackId::new(0x2a),
                topic: Topic::plain("/lidar/points"),
                src_ts: SourceTimestamp::new(base + 1),
            },
        ));
        seg.push_sched(SchedEvent::switch(
            Nanos::from_nanos(base + 1),
            Cpu::new(0),
            Pid::new(7),
            Priority::NORMAL,
            ThreadState::Runnable,
            Pid::new(8),
            Priority::NORMAL,
        ));
        seg
    }

    fn sample_file(segments: usize) -> Vec<u8> {
        let mut writer = SegmentWriter::new(Vec::new()).expect("header");
        for i in 0..segments {
            writer.write_segment(&sample_segment(i, (i as u64 + 1) * 100)).expect("segment");
        }
        writer.finish().expect("finish").0
    }

    #[test]
    fn binary_file_round_trips_segments_in_order() {
        let bytes = sample_file(3);
        let mut reader = SegmentReader::new(bytes.as_slice()).expect("header");
        for i in 0..3 {
            let seg = reader.read_segment().expect("read").expect("present");
            assert_eq!(seg, sample_segment(i, (i as u64 + 1) * 100));
        }
        assert!(reader.read_segment().expect("read").is_none());
        // After the index frame the reader stays finished.
        assert!(reader.read_segment().expect("read").is_none());
    }

    #[test]
    fn reader_iterator_yields_all_segments() {
        let bytes = sample_file(4);
        let reader = SegmentReader::new(bytes.as_slice()).expect("header");
        let segments: Result<Vec<_>, _> = reader.collect();
        assert_eq!(segments.expect("decode").len(), 4);
    }

    #[test]
    fn topic_dictionary_is_written_once_and_shared_on_decode() {
        let bytes = sample_file(3);
        // The topic string appears exactly once in the whole file.
        let needle = b"/lidar/points";
        let hits = bytes.windows(needle.len()).filter(|w| *w == needle).count();
        assert_eq!(hits, 1, "topic name must be interned across segments");

        let mut reader = SegmentReader::new(bytes.as_slice()).expect("header");
        let a = reader.read_segment().expect("read").expect("seg 0");
        let b = reader.read_segment().expect("read").expect("seg 1");
        let arc_of = |seg: &TraceSegment| match &seg.ros_events()[0].payload {
            RosPayload::DdsWrite { topic, .. } => Arc::clone(topic.name_arc()),
            other => panic!("unexpected payload {other:?}"),
        };
        assert!(
            Arc::ptr_eq(&arc_of(&a), &arc_of(&b)),
            "decoded topics must share one allocation across segments"
        );
    }

    #[test]
    fn sink_path_sorts_and_numbers_segments() {
        let mut writer = SegmentWriter::new(Vec::new()).expect("header");
        // Push out of order; end_segment must apply the chronological sort.
        writer.push_ros(RosEvent::new(
            Nanos::from_nanos(50),
            Pid::new(1),
            RosPayload::CallbackEnd { kind: CallbackKind::Timer },
        ));
        writer.push_ros(RosEvent::new(
            Nanos::from_nanos(10),
            Pid::new(1),
            RosPayload::CallbackStart { kind: CallbackKind::Timer },
        ));
        assert_eq!(writer.end_segment().expect("end"), 2);
        assert_eq!(writer.end_segment().expect("empty end"), 0, "no-op without new events");
        writer.push_sched(SchedEvent::wakeup(
            Nanos::from_nanos(60),
            Cpu::new(1),
            Pid::new(2),
            Priority::new(5),
        ));
        assert_eq!(writer.end_segment().expect("end"), 1);

        let (bytes, stats) = writer.finish().expect("finish");
        assert_eq!(stats.segments, 2);
        assert_eq!(stats.events, 3);
        assert_eq!(stats.bytes, bytes.len() as u64);

        let mut reader = SegmentReader::new(bytes.as_slice()).expect("header");
        let first = reader.read_segment().expect("read").expect("seg 0");
        assert_eq!(first.index(), 0);
        assert!(
            matches!(first.ros_events()[0].payload, RosPayload::CallbackStart { .. }),
            "sink path must sort events chronologically"
        );
        let second = reader.read_segment().expect("read").expect("seg 1");
        assert_eq!(second.index(), 1);
        assert_eq!(second.sched_events().len(), 1);
    }

    #[test]
    fn finish_flushes_pending_sink_events() {
        let mut writer = SegmentWriter::new(Vec::new()).expect("header");
        writer.push_ros(RosEvent::new(
            Nanos::from_nanos(1),
            Pid::new(1),
            RosPayload::SyncSubscribe,
        ));
        let (_, stats) = writer.finish().expect("finish");
        assert_eq!(stats.segments, 1);
        assert_eq!(stats.events, 1);
    }

    #[test]
    fn meta_frame_round_trips() {
        let mut writer = SegmentWriter::new(Vec::new()).expect("header");
        writer.set_meta("{\"apps\":2}").expect("meta");
        assert!(writer.set_meta("twice").is_err(), "at most one meta frame");
        writer.write_segment(&sample_segment(0, 10)).expect("segment");
        let (bytes, _) = writer.finish().expect("finish");
        let mut reader = SegmentReader::new(bytes.as_slice()).expect("header");
        assert_eq!(reader.meta(), None, "meta not visible before its frame streams past");
        reader.read_segment().expect("read").expect("seg");
        assert_eq!(reader.meta(), Some("{\"apps\":2}"));
    }

    #[test]
    fn indexed_file_serves_random_access() {
        let bytes = sample_file(5);
        let mut file = IndexedSegmentFile::new(io::Cursor::new(&bytes)).expect("open");
        assert_eq!(file.len(), 5);
        assert!(!file.is_empty());
        assert_eq!(file.topics().len(), 1);
        for e in file.entries() {
            assert_eq!(e.events, 3);
        }
        // Out-of-order access.
        for i in [4usize, 0, 2] {
            let seg = file.read_segment(i).expect("read");
            assert_eq!(seg, sample_segment(i, (i as u64 + 1) * 100));
        }
    }

    #[test]
    fn boundary_truncation_is_missing_index() {
        let bytes = sample_file(2);
        // Cut the file right after the last segment frame: every frame left
        // is intact, so only the missing index frame betrays the loss.
        let mut reader = SegmentReader::new(bytes.as_slice()).expect("header");
        reader.read_segment().expect("read").expect("seg 0");
        let consumed = bytes.len(); // recompute via a fresh scan below
        let _ = consumed;
        // Find the index frame offset from the trailer and cut there.
        let idx =
            u64::from_le_bytes(bytes[bytes.len() - 16..bytes.len() - 8].try_into().unwrap());
        let cut = &bytes[..idx as usize];
        let reader = SegmentReader::new(cut).expect("header");
        for r in reader {
            match r {
                Ok(_) => continue,
                Err(CodecError::MissingIndex) => return,
                Err(other) => panic!("expected MissingIndex, got {other:?}"),
            }
        }
        panic!("truncated file must not read to a clean end");
    }

    #[test]
    fn mid_frame_truncation_is_typed() {
        let bytes = sample_file(1);
        let cut = &bytes[..bytes.len() - 20];
        let mut reader = SegmentReader::new(cut).expect("header");
        let err = loop {
            match reader.read_segment() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("must not finish cleanly"),
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err, CodecError::Truncated | CodecError::MissingIndex),
            "got {err:?}"
        );
    }

    #[test]
    fn flipped_payload_byte_is_checksum_mismatch() {
        let mut bytes = sample_file(1);
        // Flip the first payload byte of the first frame: the 12-byte
        // header is followed by kind (1) + length (4), so the payload
        // starts at byte 17.
        bytes[17] ^= 0xff;
        let mut reader = SegmentReader::new(bytes.as_slice()).expect("header");
        let err = loop {
            match reader.read_segment() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("corrupt file must not read cleanly"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, CodecError::ChecksumMismatch), "got {err:?}");
    }

    #[test]
    fn foreign_files_are_rejected() {
        assert!(matches!(SegmentReader::new(&b"not a seg"[..]), Err(CodecError::BadMagic)));
        assert!(matches!(SegmentReader::new(&b""[..]), Err(CodecError::BadMagic)));
        let mut bytes = sample_file(1);
        bytes[8] = 0xff; // version 0xsomething
        match SegmentReader::new(bytes.as_slice()) {
            Err(CodecError::UnsupportedVersion(v)) => assert_eq!(v, 0x00ff),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn indexed_open_requires_finished_file() {
        let bytes = sample_file(1);
        let idx =
            u64::from_le_bytes(bytes[bytes.len() - 16..bytes.len() - 8].try_into().unwrap());
        let cut = &bytes[..idx as usize];
        assert!(matches!(
            IndexedSegmentFile::new(io::Cursor::new(cut)),
            Err(CodecError::MissingIndex)
        ));
        // An unfinished writer's output also lacks the trailer.
        let mut writer = SegmentWriter::new(Vec::new()).expect("header");
        writer.write_segment(&sample_segment(0, 10)).expect("segment");
        // (writer dropped without finish())
    }

    #[test]
    fn file_backed_round_trip() {
        let root = tmp_root("binary");
        fs::create_dir_all(&root).expect("mkdir");
        let path = root.join("run.seg");
        let mut writer = SegmentWriter::create(&path).expect("create");
        writer.write_segment(&sample_segment(0, 10)).expect("segment");
        let (_, stats) = writer.finish().expect("finish");
        assert_eq!(stats.bytes, fs::metadata(&path).expect("stat").len());

        let mut reader = SegmentReader::open(&path).expect("open");
        assert_eq!(
            reader.read_segment().expect("read").expect("seg"),
            sample_segment(0, 10)
        );
        let mut indexed = IndexedSegmentFile::open(&path).expect("open indexed");
        assert_eq!(indexed.read_segment(0).expect("read"), sample_segment(0, 10));
        let _ = fs::remove_dir_all(&root);
    }
}
