//! Streaming event sinks, trace segments, and segment cursors.
//!
//! The paper's pipeline is naturally streaming: the eBPF perf buffers are
//! drained continuously and long runs are collected as bounded *segments*
//! (Fig. 2 stop/store/restart cycle), not as one monolithic trace. This
//! module provides the vocabulary for that flow:
//!
//! - [`EventSink`] — anything events can be drained into: a [`Trace`], a
//!   [`TraceSegment`], or an incremental consumer like the synthesis
//!   session in `rtms-core`.
//! - [`TraceSegment`] — the events of one bounded collection window, with
//!   its position in the run.
//! - [`SegmentCursor`] / [`SegmentEvent`] — a chronological walk over the
//!   ROS2 and scheduler streams *merged by timestamp*, which is the order
//!   an online consumer must observe events in.
//! - [`split_by_events`] — re-segments an existing trace, the tool the
//!   streaming/batch equivalence suites are built on.

use crate::event::RosEvent;
use crate::sched_event::SchedEvent;
use crate::time::Nanos;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// A consumer of trace events.
///
/// Both event streams of the pipeline (ROS2 middleware events and kernel
/// scheduler events) are pushed through this one interface, so producers —
/// the perf buffers and tracers of `rtms-ebpf`, a running
/// `rtms_ros2::Ros2World` — need not know whether they are filling a
/// [`Trace`], a bounded [`TraceSegment`], or feeding an online consumer.
pub trait EventSink {
    /// Accepts one ROS2 middleware event.
    fn push_ros(&mut self, event: RosEvent);
    /// Accepts one kernel scheduler event.
    fn push_sched(&mut self, event: SchedEvent);

    /// Accepts a whole batch of ROS2 events, draining `events` (which
    /// keeps its allocation). The default forwards event by event; trace
    /// containers override it with a bulk move so a perf-buffer drain is
    /// one `memcpy` (or a pointer swap) instead of n virtual pushes.
    fn append_ros(&mut self, events: &mut Vec<RosEvent>) {
        for event in events.drain(..) {
            self.push_ros(event);
        }
    }

    /// Accepts a whole batch of scheduler events, draining `events` (same
    /// contract as [`EventSink::append_ros`]).
    fn append_sched(&mut self, events: &mut Vec<SchedEvent>) {
        for event in events.drain(..) {
            self.push_sched(event);
        }
    }
}

impl EventSink for Trace {
    fn push_ros(&mut self, event: RosEvent) {
        Trace::push_ros(self, event);
    }
    fn push_sched(&mut self, event: SchedEvent) {
        Trace::push_sched(self, event);
    }
    fn append_ros(&mut self, events: &mut Vec<RosEvent>) {
        Trace::append_ros(self, events);
    }
    fn append_sched(&mut self, events: &mut Vec<SchedEvent>) {
        Trace::append_sched(self, events);
    }
}

/// The events collected during one bounded window of a longer run — one
/// stop/store/restart cycle of the Fig. 2 deployment flow.
///
/// A segment is a [`Trace`] in miniature plus its position (`index`) in the
/// run; [`TraceSegment::cursor`] walks its two streams merged
/// chronologically, which is what an incremental consumer needs.
///
/// # Example
///
/// ```
/// use rtms_trace::{EventSink, Nanos, Pid, RosEvent, RosPayload, CallbackKind, TraceSegment};
///
/// let mut seg = TraceSegment::with_index(3);
/// seg.push_ros(RosEvent::new(
///     Nanos::from_millis(1),
///     Pid::new(1),
///     RosPayload::CallbackStart { kind: CallbackKind::Timer },
/// ));
/// assert_eq!(seg.index(), 3);
/// assert_eq!(seg.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSegment {
    index: usize,
    trace: Trace,
}

impl TraceSegment {
    /// Creates an empty segment with index 0.
    pub fn new() -> Self {
        TraceSegment::default()
    }

    /// Creates an empty segment at the given position in the run.
    pub fn with_index(index: usize) -> Self {
        TraceSegment { index, ..TraceSegment::default() }
    }

    /// Zero-based position of this segment within its run.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Overwrites the segment's position in the run (used when a reused
    /// decode buffer takes on the identity of the next stored segment).
    pub fn set_index(&mut self, index: usize) {
        self.index = index;
    }

    /// Removes all events, keeping both streams' capacity (see
    /// [`Trace::clear`]).
    pub fn clear(&mut self) {
        self.trace.clear();
    }

    /// Resets the segment to an empty state under a new run position,
    /// keeping every allocation the previous fill grew: the event vectors'
    /// capacity stays, and event payloads (topic-name `Arc<str>`s,
    /// node-name strings) were *moved out* by whoever consumed the events,
    /// so nothing is freed here. This is the recycle step of the slab
    /// pipeline — a steady-state segment window reuses this buffer without
    /// touching the allocator.
    pub fn clear_for_reuse(&mut self, index: usize) {
        self.trace.clear();
        self.index = index;
    }

    /// Whether both streams are already chronologically sorted (see
    /// [`Trace::is_sorted_by_time`]).
    pub fn is_sorted_by_time(&self) -> bool {
        self.trace.is_sorted_by_time()
    }

    /// Reserves capacity for the given number of additional events per
    /// stream (see [`Trace::reserve`]).
    pub fn reserve(&mut self, ros: usize, sched: usize) {
        self.trace.reserve(ros, sched);
    }

    /// The ROS2 events, in insertion order.
    pub fn ros_events(&self) -> &[RosEvent] {
        self.trace.ros_events()
    }

    /// The scheduler events, in insertion order.
    pub fn sched_events(&self) -> &[SchedEvent] {
        self.trace.sched_events()
    }

    /// Number of events of both kinds.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether the segment holds no events.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Sorts both streams chronologically (stable, like
    /// [`Trace::sort_by_time`]).
    pub fn sort_by_time(&mut self) {
        self.trace.sort_by_time();
    }

    /// Timestamp of the last event, or `None` if empty.
    pub fn end_time(&self) -> Option<Nanos> {
        self.trace.end_time()
    }

    /// A chronological cursor over both streams merged by timestamp.
    pub fn cursor(&self) -> SegmentCursor<'_> {
        self.trace.cursor()
    }

    /// Converts the segment into a plain [`Trace`] (events keep their
    /// order; call [`Trace::sort_by_time`] if needed).
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Consumes the segment into a chronological owned-event walk over
    /// both streams merged by timestamp — the by-value counterpart of
    /// [`TraceSegment::cursor`], with the identical ordering contract
    /// (stable per stream, ROS2 first on cross-stream timestamp ties).
    ///
    /// An owned walk lets a consumer *move* event payloads (topic name
    /// `Arc`s, node-name strings) into its own state instead of cloning
    /// them; the synthesis session's sink path ingests this way.
    pub fn into_merged(self) -> MergedEvents {
        self.trace.into_merged()
    }
}

impl EventSink for TraceSegment {
    fn push_ros(&mut self, event: RosEvent) {
        self.trace.push_ros(event);
    }
    fn push_sched(&mut self, event: SchedEvent) {
        self.trace.push_sched(event);
    }
    fn append_ros(&mut self, events: &mut Vec<RosEvent>) {
        self.trace.append_ros(events);
    }
    fn append_sched(&mut self, events: &mut Vec<SchedEvent>) {
        self.trace.append_sched(events);
    }
}

impl From<Trace> for TraceSegment {
    fn from(trace: Trace) -> TraceSegment {
        TraceSegment { index: 0, trace }
    }
}

impl From<TraceSegment> for Trace {
    fn from(segment: TraceSegment) -> Trace {
        segment.into_trace()
    }
}

/// One event yielded by a [`SegmentCursor`]: either stream, by reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegmentEvent<'a> {
    /// A ROS2 middleware event.
    Ros(&'a RosEvent),
    /// A kernel scheduler event.
    Sched(&'a SchedEvent),
}

impl SegmentEvent<'_> {
    /// The event's timestamp.
    pub fn time(&self) -> Nanos {
        match self {
            SegmentEvent::Ros(e) => e.time,
            SegmentEvent::Sched(e) => e.time,
        }
    }
}

/// Chronological iterator over the ROS2 and scheduler streams of a segment
/// (or whole trace), merged by timestamp.
///
/// The walk is *stable*: each stream is visited in stable time-sorted order
/// (equal timestamps keep their emission order, exactly like
/// [`Trace::sort_by_time`]), and on a timestamp tie between the two streams
/// the ROS2 event is yielded first. The input slices need not be pre-sorted
/// — the cursor sorts an index table, not the events.
///
/// # Example
///
/// ```
/// use rtms_trace::{SegmentCursor, SegmentEvent, Nanos, Pid, RosEvent, RosPayload, CallbackKind};
///
/// let ros = [RosEvent::new(
///     Nanos::from_nanos(5),
///     Pid::new(1),
///     RosPayload::CallbackStart { kind: CallbackKind::Timer },
/// )];
/// let cursor = SegmentCursor::over(&ros, &[]);
/// assert_eq!(cursor.count(), 1);
/// ```
#[derive(Debug)]
pub struct SegmentCursor<'a> {
    ros: &'a [RosEvent],
    sched: &'a [SchedEvent],
    ros_order: Vec<usize>,
    sched_order: Vec<usize>,
    ri: usize,
    si: usize,
}

impl<'a> SegmentCursor<'a> {
    /// Creates a cursor over explicit event slices.
    pub fn over(ros: &'a [RosEvent], sched: &'a [SchedEvent]) -> SegmentCursor<'a> {
        let mut ros_order: Vec<usize> = (0..ros.len()).collect();
        ros_order.sort_by_key(|&i| ros[i].time);
        let mut sched_order: Vec<usize> = (0..sched.len()).collect();
        sched_order.sort_by_key(|&i| sched[i].time);
        SegmentCursor { ros, sched, ros_order, sched_order, ri: 0, si: 0 }
    }

    /// Events not yet yielded.
    pub fn remaining(&self) -> usize {
        (self.ros_order.len() - self.ri) + (self.sched_order.len() - self.si)
    }
}

impl<'a> Iterator for SegmentCursor<'a> {
    type Item = SegmentEvent<'a>;

    fn next(&mut self) -> Option<SegmentEvent<'a>> {
        let next_ros = self.ros_order.get(self.ri).map(|&i| &self.ros[i]);
        let next_sched = self.sched_order.get(self.si).map(|&i| &self.sched[i]);
        match (next_ros, next_sched) {
            (Some(r), Some(s)) => {
                if r.time <= s.time {
                    self.ri += 1;
                    Some(SegmentEvent::Ros(r))
                } else {
                    self.si += 1;
                    Some(SegmentEvent::Sched(s))
                }
            }
            (Some(r), None) => {
                self.ri += 1;
                Some(SegmentEvent::Ros(r))
            }
            (None, Some(s)) => {
                self.si += 1;
                Some(SegmentEvent::Sched(s))
            }
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

/// One owned event yielded by [`MergedEvents`]: either stream, by value.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedSegmentEvent {
    /// A ROS2 middleware event.
    Ros(RosEvent),
    /// A kernel scheduler event.
    Sched(SchedEvent),
}

impl OwnedSegmentEvent {
    /// The event's timestamp.
    pub fn time(&self) -> Nanos {
        match self {
            OwnedSegmentEvent::Ros(e) => e.time,
            OwnedSegmentEvent::Sched(e) => e.time,
        }
    }
}

/// Chronological owned-event iterator over the two streams of a consumed
/// [`Trace`] or [`TraceSegment`], merged by timestamp.
///
/// Ordering is identical to [`SegmentCursor`]: each stream is visited in
/// stable time-sorted order and the ROS2 event wins cross-stream ties. The
/// events themselves are *moved* to the consumer, so payload allocations
/// (topic-name `Arc`s, node-name strings) change hands without a copy.
#[derive(Debug)]
pub struct MergedEvents {
    ros: std::iter::Peekable<std::vec::IntoIter<RosEvent>>,
    sched: std::iter::Peekable<std::vec::IntoIter<SchedEvent>>,
}

impl Iterator for MergedEvents {
    type Item = OwnedSegmentEvent;

    fn next(&mut self) -> Option<OwnedSegmentEvent> {
        match (self.ros.peek(), self.sched.peek()) {
            (Some(r), Some(s)) => {
                if r.time <= s.time {
                    self.ros.next().map(OwnedSegmentEvent::Ros)
                } else {
                    self.sched.next().map(OwnedSegmentEvent::Sched)
                }
            }
            (Some(_), None) => self.ros.next().map(OwnedSegmentEvent::Ros),
            (None, Some(_)) => self.sched.next().map(OwnedSegmentEvent::Sched),
            (None, None) => None,
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.ros.len() + self.sched.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for MergedEvents {}

impl Trace {
    /// Consumes the trace into a chronological owned-event walk (see
    /// [`TraceSegment::into_merged`] for the ordering contract).
    pub fn into_merged(self) -> MergedEvents {
        let (mut ros, mut sched) = self.into_events();
        ros.sort_by_key(|e| e.time);
        sched.sort_by_key(|e| e.time);
        MergedEvents {
            ros: ros.into_iter().peekable(),
            sched: sched.into_iter().peekable(),
        }
    }
}

/// Re-segments a trace into chunks of at most `events_per_segment` events,
/// walking both streams chronologically.
///
/// Concatenating the returned segments reproduces the trace's events in
/// stable time-sorted order, so feeding them to an incremental consumer is
/// equivalent to batch-processing the whole trace — the property the
/// streaming/batch equivalence suites pin down (including
/// `events_per_segment == 1`, which exercises every boundary).
///
/// # Panics
///
/// Panics if `events_per_segment` is zero.
pub fn split_by_events(trace: &Trace, events_per_segment: usize) -> Vec<TraceSegment> {
    assert!(events_per_segment > 0, "segments must hold at least one event");
    let mut segments = Vec::new();
    let mut current = TraceSegment::with_index(0);
    for event in SegmentCursor::over(trace.ros_events(), trace.sched_events()) {
        if current.len() == events_per_segment {
            let index = current.index + 1;
            segments.push(std::mem::replace(&mut current, TraceSegment::with_index(index)));
        }
        match event {
            SegmentEvent::Ros(e) => current.push_ros(e.clone()),
            SegmentEvent::Sched(e) => current.push_sched(e.clone()),
        }
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CallbackKind, RosPayload};
    use crate::ids::{Cpu, Pid, Priority};
    use crate::sched_event::ThreadState;

    fn ros(t: u64) -> RosEvent {
        RosEvent::new(
            Nanos::from_nanos(t),
            Pid::new(1),
            RosPayload::CallbackStart { kind: CallbackKind::Timer },
        )
    }

    fn sched(t: u64) -> SchedEvent {
        SchedEvent::switch(
            Nanos::from_nanos(t),
            Cpu::new(0),
            Pid::new(1),
            Priority::NORMAL,
            ThreadState::Runnable,
            Pid::new(2),
            Priority::NORMAL,
        )
    }

    #[test]
    fn segment_collects_both_streams() {
        let mut seg = TraceSegment::with_index(2);
        seg.push_ros(ros(5));
        seg.push_sched(sched(3));
        assert_eq!(seg.len(), 2);
        assert_eq!(seg.index(), 2);
        assert_eq!(seg.end_time(), Some(Nanos::from_nanos(5)));
        let trace: Trace = seg.into();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn cursor_merges_chronologically_ros_first_on_ties() {
        let mut seg = TraceSegment::new();
        seg.push_sched(sched(1));
        seg.push_ros(ros(1));
        seg.push_sched(sched(0));
        seg.push_ros(ros(2));
        let times: Vec<(bool, u64)> = seg
            .cursor()
            .map(|e| (matches!(e, SegmentEvent::Ros(_)), e.time().as_nanos()))
            .collect();
        assert_eq!(times, vec![(false, 0), (true, 1), (false, 1), (true, 2)]);
    }

    #[test]
    fn cursor_is_stable_for_equal_timestamps() {
        // Two ROS events at the same instant keep their emission order even
        // when the underlying vector is unsorted elsewhere.
        let a = ros(7);
        let b = RosEvent::new(
            Nanos::from_nanos(7),
            Pid::new(1),
            RosPayload::CallbackEnd { kind: CallbackKind::Timer },
        );
        let events = [a.clone(), b.clone()];
        let seen: Vec<&RosEvent> = SegmentCursor::over(&events, &[])
            .map(|e| match e {
                SegmentEvent::Ros(r) => r,
                SegmentEvent::Sched(_) => unreachable!(),
            })
            .collect();
        assert_eq!(seen, vec![&a, &b]);
    }

    #[test]
    fn owned_merge_matches_cursor_order() {
        let mut seg = TraceSegment::new();
        seg.push_sched(sched(1));
        seg.push_ros(ros(1));
        seg.push_sched(sched(0));
        seg.push_ros(ros(2));
        seg.push_ros(ros(1));
        let by_ref: Vec<(bool, u64)> = seg
            .cursor()
            .map(|e| (matches!(e, SegmentEvent::Ros(_)), e.time().as_nanos()))
            .collect();
        let merged = seg.into_merged();
        assert_eq!(merged.len(), by_ref.len());
        let by_val: Vec<(bool, u64)> = merged
            .map(|e| (matches!(e, OwnedSegmentEvent::Ros(_)), e.time().as_nanos()))
            .collect();
        assert_eq!(by_val, by_ref, "owned walk must match the cursor's order");
    }

    #[test]
    fn owned_merge_moves_payload_allocations() {
        use crate::topic::{SourceTimestamp, Topic};
        let topic = Topic::plain("/shared");
        let name = std::sync::Arc::clone(topic.name_arc());
        let mut trace = Trace::new();
        trace.push_ros(RosEvent::new(
            Nanos::from_nanos(1),
            Pid::new(1),
            RosPayload::TakeData {
                callback: crate::ids::CallbackId::new(1),
                topic,
                src_ts: SourceTimestamp::new(1),
            },
        ));
        let event = trace.into_merged().next().expect("one event");
        let OwnedSegmentEvent::Ros(e) = event else { panic!("ros event") };
        let RosPayload::TakeData { topic, .. } = e.payload else { panic!("take data") };
        assert!(
            std::sync::Arc::ptr_eq(topic.name_arc(), &name),
            "the name allocation must survive the owned walk"
        );
    }

    #[test]
    fn split_preserves_order_and_sizes() {
        let mut trace = Trace::new();
        for t in [3u64, 1, 2] {
            trace.push_ros(ros(t));
        }
        trace.push_sched(sched(0));
        let segments = split_by_events(&trace, 2);
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0].len(), 2);
        assert_eq!(segments[1].len(), 2);
        assert_eq!(segments[0].index(), 0);
        assert_eq!(segments[1].index(), 1);
        let times: Vec<u64> = segments
            .iter()
            .flat_map(|s| s.cursor().map(|e| e.time().as_nanos()).collect::<Vec<_>>())
            .collect();
        assert_eq!(times, vec![0, 1, 2, 3]);
    }

    #[test]
    fn split_single_event_segments() {
        let mut trace = Trace::new();
        trace.push_ros(ros(1));
        trace.push_sched(sched(2));
        let segments = split_by_events(&trace, 1);
        assert_eq!(segments.len(), 2);
        assert!(segments.iter().all(|s| s.len() == 1));
    }

    #[test]
    #[should_panic]
    fn split_rejects_zero() {
        let _ = split_by_events(&Trace::new(), 0);
    }

    #[test]
    fn clear_for_reuse_keeps_capacity_and_renumbers() {
        let mut seg = TraceSegment::with_index(1);
        seg.reserve(64, 64);
        for t in 0..64 {
            seg.push_ros(ros(t));
            seg.push_sched(sched(t));
        }
        seg.clear_for_reuse(7);
        assert!(seg.is_empty());
        assert_eq!(seg.index(), 7);
        // Refilling to the same size must not reallocate: prove it by
        // growing back without reserve and checking nothing was lost.
        for t in 0..64 {
            seg.push_ros(ros(t));
        }
        assert_eq!(seg.ros_events().len(), 64);
    }

    #[test]
    fn append_swaps_into_empty_sink_and_extends_otherwise() {
        let mut seg = TraceSegment::new();
        let mut batch: Vec<RosEvent> = (0..16).map(ros).collect();
        let donor_cap = batch.capacity();
        seg.append_ros(&mut batch);
        assert_eq!(seg.ros_events().len(), 16);
        assert!(batch.is_empty());
        // Swap path: the donor walked away with the sink's (empty) vector;
        // the next append has somewhere to extend into.
        let mut more: Vec<RosEvent> = (16..20).map(ros).collect();
        seg.append_ros(&mut more);
        assert_eq!(seg.ros_events().len(), 20);
        assert!(more.is_empty());
        let times: Vec<u64> = seg.ros_events().iter().map(|e| e.time.as_nanos()).collect();
        assert_eq!(times, (0..20).collect::<Vec<_>>(), "append preserves order");
        let _ = donor_cap;
    }

    #[test]
    fn default_append_forwards_to_pushes() {
        // A sink that only implements the per-event methods must still
        // accept batches through the trait's default append_* methods.
        struct Counter(usize);
        impl EventSink for Counter {
            fn push_ros(&mut self, _: RosEvent) {
                self.0 += 1;
            }
            fn push_sched(&mut self, _: SchedEvent) {
                self.0 += 1;
            }
        }
        let mut counter = Counter(0);
        let sink: &mut dyn EventSink = &mut counter;
        sink.append_ros(&mut vec![ros(1), ros(2)]);
        sink.append_sched(&mut vec![sched(3)]);
        assert_eq!(counter.0, 3);
    }

    #[test]
    fn trace_is_a_sink() {
        let mut trace = Trace::new();
        let sink: &mut dyn EventSink = &mut trace;
        sink.push_ros(ros(1));
        sink.push_sched(sched(2));
        assert_eq!(trace.len(), 2);
    }
}
