//! Scheduler events recorded by the kernel tracer (Sec. III-B).

use crate::ids::{Cpu, Pid, Priority};
use crate::time::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The state of the thread being switched out, as reported by
/// `sched_switch`.
///
/// Algorithm 2 does not branch on this state, but the paper records it
/// because it distinguishes preemption (still runnable) from voluntary
/// blocking (waiting for data or a signal) — useful for the waiting-time
/// debugging extension of Sec. VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ThreadState {
    /// Still runnable: the switch was a preemption.
    Runnable,
    /// Blocked waiting for data, a timer, or a signal.
    Sleeping,
    /// The thread exited.
    Dead,
}

impl fmt::Display for ThreadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadState::Runnable => write!(f, "R"),
            ThreadState::Sleeping => write!(f, "S"),
            ThreadState::Dead => write!(f, "X"),
        }
    }
}

/// The kind of scheduler event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedEventKind {
    /// `sched_switch`: the scheduler gave a CPU to a new thread.
    Switch {
        /// Thread being descheduled.
        prev_pid: Pid,
        /// Its scheduling priority.
        prev_prio: Priority,
        /// Its state at the switch.
        prev_state: ThreadState,
        /// Thread being scheduled.
        next_pid: Pid,
        /// Its scheduling priority.
        next_prio: Priority,
    },
    /// `sched_wakeup`: a thread became runnable.
    Wakeup {
        /// The woken thread.
        pid: Pid,
        /// Its scheduling priority.
        prio: Priority,
    },
}

/// One scheduler event: a `sched_switch` or `sched_wakeup` record.
///
/// From a switch event the paper extracts (i) the CPU where the switch
/// happens, (ii) PID and priority of both previous and next threads, and
/// (iii) the state of the previous thread (Sec. III-B).
///
/// # Example
///
/// ```
/// use rtms_trace::{Cpu, Nanos, Pid, Priority, SchedEvent, ThreadState};
///
/// let ev = SchedEvent::switch(
///     Nanos::from_micros(100),
///     Cpu::new(0),
///     Pid::new(10), Priority::NORMAL, ThreadState::Runnable,
///     Pid::new(11), Priority::NORMAL,
/// );
/// assert_eq!(ev.prev_pid(), Some(Pid::new(10)));
/// assert_eq!(ev.next_pid(), Some(Pid::new(11)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedEvent {
    /// Timestamp of the event.
    pub time: Nanos,
    /// The CPU on which the event occurred.
    pub cpu: Cpu,
    /// Event-specific data.
    pub kind: SchedEventKind,
}

impl SchedEvent {
    /// Creates a `sched_switch` event.
    #[allow(clippy::too_many_arguments)]
    pub fn switch(
        time: Nanos,
        cpu: Cpu,
        prev_pid: Pid,
        prev_prio: Priority,
        prev_state: ThreadState,
        next_pid: Pid,
        next_prio: Priority,
    ) -> Self {
        SchedEvent {
            time,
            cpu,
            kind: SchedEventKind::Switch { prev_pid, prev_prio, prev_state, next_pid, next_prio },
        }
    }

    /// Creates a `sched_wakeup` event.
    pub fn wakeup(time: Nanos, cpu: Cpu, pid: Pid, prio: Priority) -> Self {
        SchedEvent { time, cpu, kind: SchedEventKind::Wakeup { pid, prio } }
    }

    /// The descheduled thread, if this is a switch event.
    pub fn prev_pid(&self) -> Option<Pid> {
        match &self.kind {
            SchedEventKind::Switch { prev_pid, .. } => Some(*prev_pid),
            SchedEventKind::Wakeup { .. } => None,
        }
    }

    /// The newly scheduled thread, if this is a switch event.
    pub fn next_pid(&self) -> Option<Pid> {
        match &self.kind {
            SchedEventKind::Switch { next_pid, .. } => Some(*next_pid),
            SchedEventKind::Wakeup { .. } => None,
        }
    }

    /// Whether this event involves `pid` (as prev, next, or woken thread).
    ///
    /// This is the predicate the kernel tracer's PID filter applies in
    /// kernel space to cut the trace footprint (Sec. III-B).
    pub fn involves(&self, pid: Pid) -> bool {
        match &self.kind {
            SchedEventKind::Switch { prev_pid, next_pid, .. } => {
                *prev_pid == pid || *next_pid == pid
            }
            SchedEventKind::Wakeup { pid: woken, .. } => *woken == pid,
        }
    }

    /// On-the-wire size in bytes of the exported record, matching the
    /// size of the kernel's `sched_switch`/`sched_wakeup` tracepoint
    /// records as exported through the perf buffer (fixed-size, 8-byte
    /// aligned structs including the comm fields the paper's handler
    /// copies).
    pub fn encoded_size(&self) -> usize {
        match self.kind {
            SchedEventKind::Switch { .. } => 48,
            SchedEventKind::Wakeup { .. } => 32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw(prev: u32, next: u32) -> SchedEvent {
        SchedEvent::switch(
            Nanos::from_nanos(1),
            Cpu::new(0),
            Pid::new(prev),
            Priority::NORMAL,
            ThreadState::Runnable,
            Pid::new(next),
            Priority::NORMAL,
        )
    }

    #[test]
    fn switch_accessors() {
        let ev = sw(10, 11);
        assert_eq!(ev.prev_pid(), Some(Pid::new(10)));
        assert_eq!(ev.next_pid(), Some(Pid::new(11)));
    }

    #[test]
    fn wakeup_has_no_switch_fields() {
        let ev = SchedEvent::wakeup(Nanos::ZERO, Cpu::new(1), Pid::new(5), Priority::NORMAL);
        assert_eq!(ev.prev_pid(), None);
        assert_eq!(ev.next_pid(), None);
        assert!(ev.involves(Pid::new(5)));
        assert!(!ev.involves(Pid::new(6)));
    }

    #[test]
    fn involves_matches_either_side() {
        let ev = sw(10, 11);
        assert!(ev.involves(Pid::new(10)));
        assert!(ev.involves(Pid::new(11)));
        assert!(!ev.involves(Pid::new(12)));
    }

    #[test]
    fn encoded_sizes() {
        assert_eq!(sw(1, 2).encoded_size(), 48);
        assert_eq!(
            SchedEvent::wakeup(Nanos::ZERO, Cpu::new(0), Pid::new(1), Priority::NORMAL)
                .encoded_size(),
            32
        );
    }

    #[test]
    fn thread_state_display() {
        assert_eq!(ThreadState::Runnable.to_string(), "R");
        assert_eq!(ThreadState::Sleeping.to_string(), "S");
        assert_eq!(ThreadState::Dead.to_string(), "X");
    }
}
