//! Topics and source timestamps.
//!
//! ROS2 services are implemented over a pair of topics (a request topic and
//! a response topic); Algorithm 1 of the paper needs to tell these apart
//! from plain pub/sub topics, so a [`Topic`] carries a [`TopicKind`] next to
//! its name, mirroring what the tracer can infer from which `rmw` function
//! the name was read from (`rmw_take_int` vs `rmw_take_request` vs
//! `rmw_take_response`).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Classification of a DDS topic as seen by the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TopicKind {
    /// A regular publish/subscribe topic.
    Plain,
    /// The request half of a ROS2 service.
    ServiceRequest,
    /// The response half of a ROS2 service.
    ServiceResponse,
}

impl fmt::Display for TopicKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopicKind::Plain => write!(f, "topic"),
            TopicKind::ServiceRequest => write!(f, "service-request"),
            TopicKind::ServiceResponse => write!(f, "service-response"),
        }
    }
}

/// A named DDS topic.
///
/// Cheap to clone (the name is reference-counted), hashable, and ordered so
/// it can key maps in the synthesis algorithms.
///
/// # Example
///
/// ```
/// use rtms_trace::{Topic, TopicKind};
///
/// let t = Topic::plain("/lidar_front/points_raw");
/// assert_eq!(t.name(), "/lidar_front/points_raw");
/// assert_eq!(t.kind(), TopicKind::Plain);
///
/// let rq = Topic::service_request("/sv3");
/// assert_eq!(rq.name(), "/sv3Request");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Topic {
    name: Arc<str>,
    kind: TopicKind,
}

impl Topic {
    /// Creates a plain pub/sub topic.
    pub fn plain(name: impl Into<Arc<str>>) -> Self {
        Topic { name: name.into(), kind: TopicKind::Plain }
    }

    /// Creates the request topic of the service `service_name`, following
    /// the `<service>Request` naming the paper's figures use.
    ///
    /// Accepts anything [`Topic::plain`] accepts, for API symmetry. The
    /// suffix concat goes through [`rtms_util::concat2`], which builds
    /// the final name in a reused scratch buffer instead of a throwaway
    /// `format!` `String`; the name is a fresh allocation either way
    /// (the suffix makes sharing the input impossible).
    pub fn service_request(service_name: impl Into<Arc<str>>) -> Self {
        Topic {
            name: rtms_util::concat2(&service_name.into(), "Request"),
            kind: TopicKind::ServiceRequest,
        }
    }

    /// Creates the response topic of the service `service_name`, following
    /// the `<service>Reply` naming the paper's figures use. Accepts
    /// anything [`Topic::plain`] accepts, like
    /// [`Topic::service_request`].
    pub fn service_response(service_name: impl Into<Arc<str>>) -> Self {
        Topic {
            name: rtms_util::concat2(&service_name.into(), "Reply"),
            kind: TopicKind::ServiceResponse,
        }
    }

    /// Reassembles a topic from a name and a kind, storing the name
    /// verbatim — unlike [`Topic::service_request`]/
    /// [`Topic::service_response`], **no** suffix is appended.
    ///
    /// This is the decoder-side constructor: the binary codec
    /// (`rtms_trace::codec`) stores the final name in its dictionary and
    /// the kind bits next to the reference, and rebuilding the topic must
    /// not re-decorate the name. The `Arc` is stored as-is, so every
    /// event decoded against one dictionary entry shares one allocation.
    pub fn from_raw_parts(name: impl Into<Arc<str>>, kind: TopicKind) -> Self {
        Topic { name: name.into(), kind }
    }

    /// The topic name, e.g. `/lidars/points_fused`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared name allocation. Cloning the returned `Arc` is a
    /// reference-count bump: the synthesis pipeline uses this to carry
    /// topic names from the tracer events all the way into the model
    /// without copying the string (pinned by the no-clone assertions of
    /// the streaming-equivalence suite).
    pub fn name_arc(&self) -> &Arc<str> {
        &self.name
    }

    /// The topic classification.
    pub fn kind(&self) -> TopicKind {
        self.kind
    }

    /// Whether this topic carries service requests.
    pub fn is_service_request(&self) -> bool {
        self.kind == TopicKind::ServiceRequest
    }

    /// Whether this topic carries service responses.
    pub fn is_service_response(&self) -> bool {
        self.kind == TopicKind::ServiceResponse
    }

    /// Returns a copy of this topic with `suffix` concatenated to the name.
    ///
    /// Algorithm 1 uses this to disambiguate service topics per caller or
    /// per client (lines 11, 13, 18, 20): e.g. `/sv3Request` becomes
    /// `/sv3Request#cb:0x2a` for the caller with that callback ID.
    pub fn with_suffix(&self, suffix: &str) -> Topic {
        Topic {
            name: rtms_util::concat3(&self.name, "#", suffix),
            kind: self.kind,
        }
    }
}

impl fmt::Display for Topic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// The DDS source timestamp of a published sample.
///
/// Assigned by the writer at publication time and carried to every reader;
/// the paper reads it by storing the out-parameter's address at
/// `rmw_take_*` entry and dereferencing at exit. It is the join key that
/// lets Algorithm 1 match a `dds_write` event to the `take` events of the
/// samples it produced.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct SourceTimestamp(u64);

impl SourceTimestamp {
    /// Creates a source timestamp from a raw value.
    pub const fn new(raw: u64) -> Self {
        SourceTimestamp(raw)
    }

    /// The raw value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SourceTimestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srcTS:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_topic() {
        let t = Topic::plain("/t1");
        assert_eq!(t.name(), "/t1");
        assert!(!t.is_service_request());
        assert!(!t.is_service_response());
        assert_eq!(t.to_string(), "/t1");
    }

    #[test]
    fn service_topics() {
        let rq = Topic::service_request("/sv1");
        let rs = Topic::service_response("/sv1");
        assert_eq!(rq.name(), "/sv1Request");
        assert_eq!(rs.name(), "/sv1Reply");
        assert!(rq.is_service_request());
        assert!(rs.is_service_response());
    }

    #[test]
    fn service_ctors_accept_shared_names_like_plain() {
        // API symmetry with `Topic::plain`: &str, String, and Arc<str> all
        // work, and all spellings name the same topic.
        let shared: Arc<str> = Arc::from("/sv1");
        assert_eq!(Topic::service_request(shared.clone()), Topic::service_request("/sv1"));
        assert_eq!(
            Topic::service_response(String::from("/sv1")),
            Topic::service_response(shared)
        );
    }

    #[test]
    fn suffix_keeps_kind() {
        let rq = Topic::service_request("/sv1").with_suffix("cb:0x1");
        assert_eq!(rq.name(), "/sv1Request#cb:0x1");
        assert_eq!(rq.kind(), TopicKind::ServiceRequest);
    }

    #[test]
    fn topics_equal_by_name_and_kind() {
        assert_eq!(Topic::plain("/a"), Topic::plain("/a"));
        assert_ne!(
            Topic::plain("/sv1Request"),
            Topic::service_request("/sv1"),
            "same name, different kind must differ"
        );
    }

    #[test]
    fn serde_round_trip() {
        let t = Topic::service_request("/sv2");
        let json = serde_json::to_string(&t).expect("ser");
        let back: Topic = serde_json::from_str(&json).expect("de");
        assert_eq!(t, back);
    }
}
