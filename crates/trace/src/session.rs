//! Tracing sessions and the trace database (Fig. 2).
//!
//! Long application runs exceed trace-buffer capacity, so the paper collects
//! traces in *segments*: the ROS2-RT and kernel tracers are stopped, the
//! buffer contents are stored in a database server, and the tracers restart
//! with empty buffers. A [`TraceSession`] holds the segments of one
//! application run; a [`TraceDatabase`] holds many sessions, possibly
//! labeled with an operating *mode* (city driving, highway driving, …) for
//! multi-mode model synthesis.

use crate::trace::Trace;
use serde::{Deserialize, Serialize};

/// The trace segments collected during one run of the applications.
///
/// # Example
///
/// ```
/// use rtms_trace::{Trace, TraceSession};
///
/// let mut session = TraceSession::new("run-1");
/// session.push_segment(Trace::new());
/// session.push_segment(Trace::new());
/// assert_eq!(session.segments().len(), 2);
/// assert!(session.merged().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceSession {
    label: String,
    segments: Vec<Trace>,
}

impl TraceSession {
    /// Creates an empty session with a human-readable label.
    pub fn new(label: impl Into<String>) -> Self {
        TraceSession { label: label.into(), segments: Vec::new() }
    }

    /// The session label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Adds a trace segment (one start/stop cycle of TR_RT + TR_KN).
    pub fn push_segment(&mut self, segment: Trace) {
        self.segments.push(segment);
    }

    /// The stored segments.
    pub fn segments(&self) -> &[Trace] {
        &self.segments
    }

    /// Merges all segments of this session into a single chronologically
    /// sorted trace.
    pub fn merged(&self) -> Trace {
        let mut out = Trace::new();
        for seg in &self.segments {
            out.merge(seg.clone());
        }
        out
    }

    /// Total encoded size of all segments in bytes.
    pub fn encoded_size(&self) -> usize {
        self.segments.iter().map(Trace::encoded_size).sum()
    }
}

/// A store of tracing sessions collected across many runs and scenarios.
///
/// Sessions can be tagged with a mode; [`TraceDatabase::sessions_for_mode`]
/// selects the inputs for a per-mode (multi-mode) DAG synthesis.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceDatabase {
    entries: Vec<(Option<String>, TraceSession)>,
}

impl TraceDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        TraceDatabase::default()
    }

    /// Stores a session with no mode tag.
    pub fn insert(&mut self, session: TraceSession) {
        self.entries.push((None, session));
    }

    /// Stores a session tagged with an operating mode.
    pub fn insert_with_mode(&mut self, mode: impl Into<String>, session: TraceSession) {
        self.entries.push((Some(mode.into()), session));
    }

    /// All sessions, in insertion order.
    pub fn sessions(&self) -> impl Iterator<Item = &TraceSession> {
        self.entries.iter().map(|(_, s)| s)
    }

    /// Sessions tagged with `mode`.
    pub fn sessions_for_mode<'a>(
        &'a self,
        mode: &'a str,
    ) -> impl Iterator<Item = &'a TraceSession> + 'a {
        self.entries
            .iter()
            .filter(move |(m, _)| m.as_deref() == Some(mode))
            .map(|(_, s)| s)
    }

    /// All distinct mode tags, sorted.
    pub fn modes(&self) -> Vec<&str> {
        let mut modes: Vec<&str> =
            self.entries.iter().filter_map(|(m, _)| m.as_deref()).collect();
        modes.sort_unstable();
        modes.dedup();
        modes
    }

    /// Number of stored sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges every session of every mode into one trace
    /// (Fig. 2 processing option (i)).
    pub fn merged_all(&self) -> Trace {
        let mut out = Trace::new();
        for (_, session) in &self.entries {
            out.merge(session.merged());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CallbackKind, RosPayload};
    use crate::ids::Pid;
    use crate::time::Nanos;
    use crate::RosEvent;

    fn one_event_trace(t: u64) -> Trace {
        let mut tr = Trace::new();
        tr.push_ros(RosEvent::new(
            Nanos::from_nanos(t),
            Pid::new(1),
            RosPayload::CallbackStart { kind: CallbackKind::Timer },
        ));
        tr
    }

    #[test]
    fn session_merges_segments_in_time_order() {
        let mut s = TraceSession::new("run");
        s.push_segment(one_event_trace(20));
        s.push_segment(one_event_trace(10));
        let merged = s.merged();
        assert_eq!(merged.ros_events().len(), 2);
        assert_eq!(merged.ros_events()[0].time, Nanos::from_nanos(10));
        assert_eq!(s.label(), "run");
    }

    #[test]
    fn database_mode_filtering() {
        let mut db = TraceDatabase::new();
        db.insert_with_mode("city", TraceSession::new("c1"));
        db.insert_with_mode("highway", TraceSession::new("h1"));
        db.insert_with_mode("city", TraceSession::new("c2"));
        db.insert(TraceSession::new("untagged"));

        assert_eq!(db.len(), 4);
        assert_eq!(db.sessions_for_mode("city").count(), 2);
        assert_eq!(db.sessions_for_mode("highway").count(), 1);
        assert_eq!(db.modes(), vec!["city", "highway"]);
    }

    #[test]
    fn merged_all_combines_everything() {
        let mut db = TraceDatabase::new();
        let mut s1 = TraceSession::new("a");
        s1.push_segment(one_event_trace(1));
        let mut s2 = TraceSession::new("b");
        s2.push_segment(one_event_trace(2));
        db.insert(s1);
        db.insert_with_mode("city", s2);
        assert_eq!(db.merged_all().ros_events().len(), 2);
    }

    #[test]
    fn encoded_size_sums_segments() {
        let mut s = TraceSession::new("run");
        s.push_segment(one_event_trace(1));
        s.push_segment(one_event_trace(2));
        assert_eq!(s.encoded_size(), 2 * one_event_trace(1).encoded_size());
    }
}
