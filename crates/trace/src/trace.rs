//! Trace containers.

use crate::event::RosEvent;
use crate::ids::Pid;
use crate::sched_event::SchedEvent;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// A trace: the ROS2 events and scheduler events collected over one tracing
/// session (or the merge of several).
///
/// This is the input to the synthesis algorithms: Algorithm 1 consumes
/// `ros_events` filtered by PID, Algorithm 2 consumes `sched_events`.
///
/// # Example
///
/// ```
/// use rtms_trace::{Nanos, Pid, RosEvent, RosPayload, Trace};
///
/// let mut t = Trace::new();
/// t.push_ros(RosEvent::new(
///     Nanos::from_nanos(20), Pid::new(1),
///     RosPayload::NodeInit { node_name: "b".into() },
/// ));
/// t.push_ros(RosEvent::new(
///     Nanos::from_nanos(10), Pid::new(1),
///     RosPayload::NodeInit { node_name: "a".into() },
/// ));
/// t.sort_by_time();
/// assert!(t.ros_events()[0].time < t.ros_events()[1].time);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    ros_events: Vec<RosEvent>,
    sched_events: Vec<SchedEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a trace from already-collected event vectors.
    pub fn from_events(ros_events: Vec<RosEvent>, sched_events: Vec<SchedEvent>) -> Self {
        Trace { ros_events, sched_events }
    }

    /// Decomposes the trace into its `(ros_events, sched_events)` vectors.
    pub fn into_events(self) -> (Vec<RosEvent>, Vec<SchedEvent>) {
        (self.ros_events, self.sched_events)
    }

    /// A chronological cursor over both event streams merged by timestamp
    /// (see [`crate::sink::SegmentCursor`] for the ordering contract).
    pub fn cursor(&self) -> crate::sink::SegmentCursor<'_> {
        crate::sink::SegmentCursor::over(&self.ros_events, &self.sched_events)
    }

    /// Appends a ROS2 event.
    pub fn push_ros(&mut self, event: RosEvent) {
        self.ros_events.push(event);
    }

    /// Removes all events, keeping the allocated capacity — lets a decode
    /// or drain loop reuse one trace as a scratch buffer.
    pub fn clear(&mut self) {
        self.ros_events.clear();
        self.sched_events.clear();
    }

    /// Reserves capacity for at least the given number of additional
    /// events per stream (used by the binary decoder, which knows both
    /// stream lengths up front).
    pub fn reserve(&mut self, ros: usize, sched: usize) {
        self.ros_events.reserve(ros);
        self.sched_events.reserve(sched);
    }

    /// Appends a scheduler event.
    pub fn push_sched(&mut self, event: SchedEvent) {
        self.sched_events.push(event);
    }

    /// The ROS2 events, in insertion order (call [`Trace::sort_by_time`]
    /// first if chronological order is required).
    pub fn ros_events(&self) -> &[RosEvent] {
        &self.ros_events
    }

    /// The scheduler events.
    pub fn sched_events(&self) -> &[SchedEvent] {
        &self.sched_events
    }

    /// Number of events of both kinds.
    pub fn len(&self) -> usize {
        self.ros_events.len() + self.sched_events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.ros_events.is_empty() && self.sched_events.is_empty()
    }

    /// Sorts both event streams chronologically (stable, so simultaneous
    /// events keep their emission order — important because a callback-start
    /// probe and the `take` probe it encloses may share a timestamp).
    ///
    /// Already-sorted streams are detected with one linear scan and left
    /// untouched. Tracers emit in time order, so on the hot collection path
    /// this is the common case and the scan replaces the sort entirely.
    pub fn sort_by_time(&mut self) {
        if !self.ros_events.is_sorted_by_key(|e| e.time) {
            self.ros_events.sort_by_key(|e| e.time);
        }
        if !self.sched_events.is_sorted_by_key(|e| e.time) {
            self.sched_events.sort_by_key(|e| e.time);
        }
    }

    /// Whether both event streams are already in chronological order — the
    /// precondition for the zero-allocation two-pointer merge consumers use
    /// instead of building a [`crate::sink::SegmentCursor`] index table.
    pub fn is_sorted_by_time(&self) -> bool {
        self.ros_events.is_sorted_by_key(|e| e.time)
            && self.sched_events.is_sorted_by_key(|e| e.time)
    }

    /// Moves all events out of `events` onto the end of the ROS2 stream.
    ///
    /// When this trace's stream is empty the two vectors are *swapped*, so
    /// the bulk transfer is pointer-sized and — crucially for the recycled
    /// slab pipeline — the donor vector inherits this trace's allocated
    /// capacity for its next fill. Otherwise the events are appended with
    /// one `memcpy` and `events` keeps its own (now empty) storage.
    pub fn append_ros(&mut self, events: &mut Vec<RosEvent>) {
        if self.ros_events.is_empty() {
            std::mem::swap(&mut self.ros_events, events);
        } else {
            self.ros_events.append(events);
        }
    }

    /// Moves all events out of `events` onto the end of the scheduler
    /// stream (same swap-when-empty contract as [`Trace::append_ros`]).
    pub fn append_sched(&mut self, events: &mut Vec<SchedEvent>) {
        if self.sched_events.is_empty() {
            std::mem::swap(&mut self.sched_events, events);
        } else {
            self.sched_events.append(events);
        }
    }

    /// The ROS2 events of one node (`SortByTime` + `filter by process` of
    /// Algorithm 1's precondition), chronologically sorted.
    pub fn ros_events_for(&self, pid: Pid) -> Vec<RosEvent> {
        let mut events: Vec<RosEvent> =
            self.ros_events.iter().filter(|e| e.pid == pid).cloned().collect();
        events.sort_by_key(|e| e.time);
        events
    }

    /// All distinct PIDs appearing in ROS2 events, sorted.
    pub fn ros_pids(&self) -> Vec<Pid> {
        let mut pids: Vec<Pid> = self.ros_events.iter().map(|e| e.pid).collect();
        pids.sort();
        pids.dedup();
        pids
    }

    /// Merges another trace into this one (Fig. 2, "merge traces" path).
    /// Events are re-sorted chronologically afterwards.
    pub fn merge(&mut self, other: Trace) {
        self.ros_events.extend(other.ros_events);
        self.sched_events.extend(other.sched_events);
        self.sort_by_time();
    }

    /// Timestamp of the last event in the trace, or `None` if empty.
    pub fn end_time(&self) -> Option<Nanos> {
        let ros = self.ros_events.iter().map(|e| e.time).max();
        let sched = self.sched_events.iter().map(|e| e.time).max();
        match (ros, sched) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        }
    }

    /// Total encoded size in bytes of all events, modeling the on-disk
    /// footprint of the exported trace (Sec. VI trace-volume experiment).
    pub fn encoded_size(&self) -> usize {
        self.ros_events.iter().map(RosEvent::encoded_size).sum::<usize>()
            + self.sched_events.iter().map(SchedEvent::encoded_size).sum::<usize>()
    }

    /// Serializes the trace to JSON (the portable format the trace database
    /// of Fig. 2 stores segments in).
    ///
    /// # Errors
    ///
    /// Returns an error if serialization fails (it cannot for this type,
    /// but the signature is honest about the serde contract).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserializes a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns an error if `json` is not a valid serialized [`Trace`].
    pub fn from_json(json: &str) -> Result<Trace, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CallbackKind, RosPayload};
    use crate::ids::{Cpu, Priority};
    use crate::sched_event::ThreadState;

    fn ros(t: u64, pid: u32) -> RosEvent {
        RosEvent::new(
            Nanos::from_nanos(t),
            Pid::new(pid),
            RosPayload::CallbackStart { kind: CallbackKind::Timer },
        )
    }

    fn sched(t: u64) -> SchedEvent {
        SchedEvent::switch(
            Nanos::from_nanos(t),
            Cpu::new(0),
            Pid::new(1),
            Priority::NORMAL,
            ThreadState::Runnable,
            Pid::new(2),
            Priority::NORMAL,
        )
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.end_time(), None);
    }

    #[test]
    fn sort_and_filter_by_pid() {
        let mut t = Trace::new();
        t.push_ros(ros(30, 2));
        t.push_ros(ros(10, 1));
        t.push_ros(ros(20, 1));
        let for_one = t.ros_events_for(Pid::new(1));
        assert_eq!(for_one.len(), 2);
        assert!(for_one[0].time <= for_one[1].time);
        assert_eq!(t.ros_pids(), vec![Pid::new(1), Pid::new(2)]);
    }

    #[test]
    fn merge_concatenates_and_sorts() {
        let mut a = Trace::new();
        a.push_ros(ros(30, 1));
        a.push_sched(sched(25));
        let mut b = Trace::new();
        b.push_ros(ros(10, 1));
        b.push_sched(sched(5));
        a.merge(b);
        assert_eq!(a.ros_events().len(), 2);
        assert_eq!(a.ros_events()[0].time, Nanos::from_nanos(10));
        assert_eq!(a.sched_events()[0].time, Nanos::from_nanos(5));
        assert_eq!(a.end_time(), Some(Nanos::from_nanos(30)));
    }

    #[test]
    fn encoded_size_sums_both_streams() {
        let mut t = Trace::new();
        t.push_ros(ros(1, 1));
        t.push_sched(sched(2));
        assert_eq!(
            t.encoded_size(),
            t.ros_events()[0].encoded_size() + t.sched_events()[0].encoded_size()
        );
    }

    #[test]
    fn json_round_trip() {
        let mut t = Trace::new();
        t.push_ros(ros(1, 1));
        t.push_sched(sched(2));
        let json = t.to_json().expect("serialize");
        let back = Trace::from_json(&json).expect("deserialize");
        assert_eq!(t, back);
    }

    #[test]
    fn stable_sort_preserves_equal_timestamp_order() {
        let mut t = Trace::new();
        t.push_ros(RosEvent::new(
            Nanos::from_nanos(5),
            Pid::new(1),
            RosPayload::CallbackStart { kind: CallbackKind::Subscriber },
        ));
        t.push_ros(RosEvent::new(
            Nanos::from_nanos(5),
            Pid::new(1),
            RosPayload::CallbackEnd { kind: CallbackKind::Subscriber },
        ));
        t.sort_by_time();
        assert!(matches!(t.ros_events()[0].payload, RosPayload::CallbackStart { .. }));
    }
}
