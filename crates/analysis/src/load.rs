//! Processor-load accounting from the synthesized model.
//!
//! The paper notes that its measurements are "useful even for simple
//! debugging and optimization, e.g., balancing load across processor cores
//! or keeping the load below a certain threshold while determining core
//! bindings" — and quotes cb2's 27 % average core load as the example.

use rtms_core::{Dag, VertexKind};
use rtms_trace::Nanos;

/// Average processor load of one vertex over an observation window:
/// total measured execution time divided by the window length.
pub fn callback_load(dag: &Dag, vertex: rtms_core::VertexId, window: Nanos) -> f64 {
    if window == Nanos::ZERO {
        return 0.0;
    }
    let v = dag.vertex(vertex);
    let total: u64 = v.exec_times.iter().map(|e| e.as_nanos()).sum();
    total as f64 / window.as_nanos() as f64
}

/// Aggregated load of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLoad {
    /// The node name.
    pub node: String,
    /// Sum of its callbacks' loads (fraction of one core).
    pub load: f64,
}

/// Per-node processor loads over an observation window, sorted descending —
/// the input to a load-balancing / core-binding decision.
pub fn node_loads(dag: &Dag, window: Nanos) -> Vec<NodeLoad> {
    let mut nodes: Vec<String> = dag.vertices().iter().map(|v| v.node.clone()).collect();
    nodes.sort();
    nodes.dedup();
    let mut out: Vec<NodeLoad> = nodes
        .into_iter()
        .map(|node| {
            let load = dag
                .vertex_ids()
                .filter(|&v| dag.vertex(v).node == node)
                .filter(|&v| dag.vertex(v).kind != VertexKind::AndJunction)
                .map(|v| callback_load(dag, v, window))
                .sum();
            NodeLoad { node, load }
        })
        .collect();
    out.sort_by(|a, b| b.load.total_cmp(&a.load));
    out
}

/// Mean per-node processor loads across the per-run models of a multi-run
/// experiment, sorted descending.
///
/// Each run observed the same window; a run in which a node does not
/// appear contributes zero load for it (the node was idle, not absent from
/// the machine). This is the multi-run generalization of [`node_loads`]
/// used by the experiment harness: feed it the per-run DAGs a run fan-out
/// collected and the per-run observation window. For models that arrive
/// one at a time (streamed synthesis, models loaded from disk), use
/// [`LoadAccumulator`] — this function is its batch wrapper.
pub fn node_loads_across_runs(dags: &[Dag], window: Nanos) -> Vec<NodeLoad> {
    let mut acc = LoadAccumulator::new(window);
    for dag in dags {
        acc.add_run(dag);
    }
    acc.mean_loads()
}

/// Streaming accumulator behind [`node_loads_across_runs`]: folds per-run
/// models in one at a time, so a cross-run load analysis never needs every
/// run's DAG in memory at once.
///
/// # Example
///
/// ```
/// use rtms_analysis::LoadAccumulator;
/// use rtms_core::Dag;
/// use rtms_trace::Nanos;
///
/// let mut acc = LoadAccumulator::new(Nanos::from_secs(1));
/// acc.add_run(&Dag::new()); // e.g. a model streamed from a SynthesisSession
/// assert_eq!(acc.runs(), 1);
/// assert!(acc.mean_loads().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct LoadAccumulator {
    window: Nanos,
    sums: rtms_util::FxHashMap<String, f64>,
    runs: usize,
}

impl LoadAccumulator {
    /// Creates an accumulator for runs that each observed `window`.
    pub fn new(window: Nanos) -> LoadAccumulator {
        LoadAccumulator { window, sums: rtms_util::FxHashMap::default(), runs: 0 }
    }

    /// Folds in one run's model; the model can be dropped afterwards.
    pub fn add_run(&mut self, dag: &Dag) {
        self.runs += 1;
        for nl in node_loads(dag, self.window) {
            *self.sums.entry(nl.node).or_insert(0.0) += nl.load;
        }
    }

    /// Number of runs folded in so far.
    pub fn runs(&self) -> usize {
        self.runs
    }

    /// Mean per-node loads over the runs seen so far, sorted descending
    /// (ties broken by node name). Empty if no runs were added.
    pub fn mean_loads(&self) -> Vec<NodeLoad> {
        if self.runs == 0 {
            return Vec::new();
        }
        let runs = self.runs as f64;
        let mut out: Vec<NodeLoad> = self
            .sums
            .iter()
            .map(|(node, sum)| NodeLoad { node: node.clone(), load: sum / runs })
            .collect();
        out.sort_by(|a, b| b.load.total_cmp(&a.load).then_with(|| a.node.cmp(&b.node)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_core::{CallbackRecord, CbList, ExecStats};
    use rtms_trace::{CallbackId, CallbackKind, Pid};
    use std::collections::HashMap;

    fn dag_one_cb(samples_ms: &[u64]) -> Dag {
        let times: Vec<Nanos> = samples_ms.iter().map(|&m| Nanos::from_millis(m)).collect();
        let rec = CallbackRecord {
            pid: Pid::new(1),
            id: CallbackId::new(1),
            kind: CallbackKind::Subscriber,
            in_topic: Some("/in".into()),
            out_topics: vec![],
            is_sync_subscriber: false,
            stats: ExecStats::from_samples(times.iter().copied()),
            exec_times: times,
            start_times: vec![Nanos::ZERO],
        };
        let list: CbList = [rec].into_iter().collect();
        let names: HashMap<Pid, String> = [(Pid::new(1), "n".to_string())].into();
        Dag::from_cblists(&[(Pid::new(1), list)], &names)
    }

    #[test]
    fn load_is_exec_over_window() {
        // 10 instances of 27 ms over 1 s => 27% — the paper's cb2 example.
        let dag = dag_one_cb(&[27; 10]);
        let v = dag.vertex_ids().next().expect("vertex");
        let load = callback_load(&dag, v, Nanos::from_secs(1));
        assert!((load - 0.27).abs() < 1e-9);
    }

    #[test]
    fn node_loads_sorted_descending() {
        let dag = dag_one_cb(&[10; 5]);
        let loads = node_loads(&dag, Nanos::from_secs(1));
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].node, "n");
        assert!((loads[0].load - 0.05).abs() < 1e-9);
    }

    #[test]
    fn cross_run_loads_average_and_default_to_zero() {
        // Run 1 observes 50 ms of work, run 2 has the node idle (absent):
        // the mean load over both runs is 2.5%.
        let runs = [dag_one_cb(&[10; 5]), Dag::new()];
        let loads = node_loads_across_runs(&runs, Nanos::from_secs(1));
        assert_eq!(loads.len(), 1);
        assert!((loads[0].load - 0.025).abs() < 1e-9);
        assert!(node_loads_across_runs(&[], Nanos::from_secs(1)).is_empty());
    }

    #[test]
    fn accumulator_matches_batch() {
        let runs = [dag_one_cb(&[10; 5]), dag_one_cb(&[20; 2]), Dag::new()];
        let mut acc = LoadAccumulator::new(Nanos::from_secs(1));
        for dag in &runs {
            acc.add_run(dag);
        }
        assert_eq!(acc.runs(), 3);
        assert_eq!(acc.mean_loads(), node_loads_across_runs(&runs, Nanos::from_secs(1)));
    }

    #[test]
    fn zero_window_is_zero_load() {
        let dag = dag_one_cb(&[10]);
        let v = dag.vertex_ids().next().expect("vertex");
        assert_eq!(callback_load(&dag, v, Nanos::ZERO), 0.0);
    }
}
