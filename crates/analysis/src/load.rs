//! Processor-load accounting from the synthesized model.
//!
//! The paper notes that its measurements are "useful even for simple
//! debugging and optimization, e.g., balancing load across processor cores
//! or keeping the load below a certain threshold while determining core
//! bindings" — and quotes cb2's 27 % average core load as the example.

use rtms_core::{Dag, VertexKind};
use rtms_trace::Nanos;

/// Average processor load of one vertex over an observation window:
/// total measured execution time divided by the window length.
pub fn callback_load(dag: &Dag, vertex: rtms_core::VertexId, window: Nanos) -> f64 {
    if window == Nanos::ZERO {
        return 0.0;
    }
    let v = dag.vertex(vertex);
    let total: u64 = v.exec_times.iter().map(|e| e.as_nanos()).sum();
    total as f64 / window.as_nanos() as f64
}

/// Aggregated load of one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLoad {
    /// The node name.
    pub node: String,
    /// Sum of its callbacks' loads (fraction of one core).
    pub load: f64,
}

/// Per-node processor loads over an observation window, sorted descending —
/// the input to a load-balancing / core-binding decision.
pub fn node_loads(dag: &Dag, window: Nanos) -> Vec<NodeLoad> {
    let mut nodes: Vec<String> = dag.vertices().iter().map(|v| v.node.clone()).collect();
    nodes.sort();
    nodes.dedup();
    let mut out: Vec<NodeLoad> = nodes
        .into_iter()
        .map(|node| {
            let load = dag
                .vertex_ids()
                .filter(|&v| dag.vertex(v).node == node)
                .filter(|&v| dag.vertex(v).kind != VertexKind::AndJunction)
                .map(|v| callback_load(dag, v, window))
                .sum();
            NodeLoad { node, load }
        })
        .collect();
    out.sort_by(|a, b| b.load.total_cmp(&a.load));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_core::{CallbackRecord, CbList, ExecStats};
    use rtms_trace::{CallbackId, CallbackKind, Pid};
    use std::collections::HashMap;

    fn dag_one_cb(samples_ms: &[u64]) -> Dag {
        let times: Vec<Nanos> = samples_ms.iter().map(|&m| Nanos::from_millis(m)).collect();
        let rec = CallbackRecord {
            pid: Pid::new(1),
            id: CallbackId::new(1),
            kind: CallbackKind::Subscriber,
            in_topic: Some("/in".into()),
            out_topics: vec![],
            is_sync_subscriber: false,
            stats: ExecStats::from_samples(times.iter().copied()),
            exec_times: times,
            start_times: vec![Nanos::ZERO],
        };
        let list: CbList = [rec].into_iter().collect();
        let names: HashMap<Pid, String> = [(Pid::new(1), "n".to_string())].into();
        Dag::from_cblists(&[(Pid::new(1), list)], &names)
    }

    #[test]
    fn load_is_exec_over_window() {
        // 10 instances of 27 ms over 1 s => 27% — the paper's cb2 example.
        let dag = dag_one_cb(&[27; 10]);
        let v = dag.vertex_ids().next().expect("vertex");
        let load = callback_load(&dag, v, Nanos::from_secs(1));
        assert!((load - 0.27).abs() < 1e-9);
    }

    #[test]
    fn node_loads_sorted_descending() {
        let dag = dag_one_cb(&[10; 5]);
        let loads = node_loads(&dag, Nanos::from_secs(1));
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].node, "n");
        assert!((loads[0].load - 0.05).abs() < 1e-9);
    }

    #[test]
    fn zero_window_is_zero_load() {
        let dag = dag_one_cb(&[10]);
        let v = dag.vertex_ids().next().expect("vertex");
        assert_eq!(callback_load(&dag, v, Nanos::ZERO), 0.0);
    }
}
