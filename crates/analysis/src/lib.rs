//! Downstream timing analyses over synthesized models.
//!
//! The paper positions its DAG as the input to existing analysis and
//! optimization techniques. This crate provides representative consumers:
//!
//! - [`chains`]: enumerate computation chains (root-to-sink paths) and
//!   compute simple latency bounds from the measured attributes.
//! - [`load`]: per-callback and per-node processor load (e.g. the paper's
//!   observation that cb2 averages a 27 % core load at 10 Hz), for
//!   load-balancing and core-binding decisions.
//! - [`e2e`]: *measured* end-to-end latency of a topic chain by traversing
//!   the data flow through source timestamps — the Sec. VII extension the
//!   paper sketches ("we are logging the source timestamp of data on
//!   publisher and subscriber sides ...").
//! - [`waiting`]: callback waiting times from `sched_wakeup` events — the
//!   other Sec. VII extension.
//! - [`optimize`]: chain-aware priority and core-binding proposals from
//!   the measured model (the optimization loop Sec. VII motivates).
//! - [`ablation`]: quantifies why a multi-caller service must be split
//!   into per-caller vertices (Sec. IV): with a single vertex, spurious
//!   cross-caller chains appear.

pub mod ablation;
pub mod chains;
pub mod e2e;
pub mod load;
pub mod optimize;
pub mod waiting;

pub use ablation::{spurious_chain_report, SpuriousChains};
pub use chains::{enumerate_chains, latency_bound, Chain};
pub use e2e::{end_to_end_latencies, E2eMeasurement};
pub use load::{callback_load, node_loads, node_loads_across_runs, LoadAccumulator, NodeLoad};
pub use optimize::{propose_schedule, propose_schedule_for, NodeAssignment, ScheduleProposal};
pub use waiting::{waiting_times, WaitMeasurement};
