//! Schedule-configuration proposals from the synthesized model.
//!
//! Sec. VII of the paper sketches using the framework "for debugging and
//! optimization", up to changing the schedule configuration of ROS2 nodes
//! (cf. Blaß et al., RTAS'21). This module closes that loop on the model
//! side: from a synthesized DAG and an observation window it proposes a
//! per-node schedule configuration —
//!
//! 1. **chain-aware priorities**: nodes on the chains of interest are
//!    promoted above best-effort, with priority *increasing* toward the
//!    sink so in-flight data drains through the pipeline instead of being
//!    preempted by fresh releases, and
//! 2. **load isolation**: nodes whose measured processor load exceeds a
//!    threshold get a dedicated core recommendation, heaviest first.
//!
//! The proposal is deliberately middleware-agnostic data (`i32` priority,
//! optional core index); applying it is the deployment's job — see the
//! `optimize_schedule` example, which feeds it back into the simulator and
//! measures the end-to-end latency improvement.

use crate::chains::{enumerate_chains, latency_bound};
use crate::load::node_loads;
use rtms_core::Dag;
use rtms_trace::Nanos;

/// Proposed scheduling parameters for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeAssignment {
    /// The node name.
    pub node: String,
    /// Proposed scheduling priority (higher = more urgent; 0 = best
    /// effort).
    pub priority: i32,
    /// Core to pin the node's executor to, if isolation is recommended.
    pub dedicated_core: Option<usize>,
    /// The measured load that motivated the proposal.
    pub load: f64,
}

/// A complete schedule proposal.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScheduleProposal {
    /// Per-node assignments, every node of the model present.
    pub assignments: Vec<NodeAssignment>,
    /// Human-readable description of the critical chain that drove the
    /// priority ordering.
    pub critical_chain: String,
}

impl ScheduleProposal {
    /// The assignment for `node`, if present.
    pub fn for_node(&self, node: &str) -> Option<&NodeAssignment> {
        self.assignments.iter().find(|a| a.node == node)
    }
}

/// Proposes a schedule configuration from a synthesized model.
///
/// `window` is the observation window the model's execution samples cover
/// (used to compute loads); `cpus` is the number of cores available for
/// dedication; `isolation_threshold` is the per-node load above which a
/// dedicated core is recommended (the paper's example policy: "keeping the
/// load below a certain threshold while determining core bindings").
pub fn propose_schedule(
    dag: &Dag,
    window: Nanos,
    cpus: usize,
    isolation_threshold: f64,
) -> ScheduleProposal {
    propose_schedule_for(dag, window, cpus, isolation_threshold, None)
}

/// Like [`propose_schedule`], but optimizing for the chains that end in
/// `target_sink_node` (e.g. the localizer of an AVP deployment) instead of
/// the globally longest chain — the usual case when one end-to-end latency
/// matters more than the rest of the system.
pub fn propose_schedule_for(
    dag: &Dag,
    window: Nanos,
    cpus: usize,
    isolation_threshold: f64,
    target_sink_node: Option<&str>,
) -> ScheduleProposal {
    let loads = node_loads(dag, window);

    // Chains of interest: every root-to-sink path reaching the target sink
    // (or all chains when no target is given). Promoting only the single
    // longest chain is a trap when the sink sits behind an AND junction:
    // starving a sibling input chain stalls the synchronizer and the sink
    // never fires — so *all* contributing chains are promoted.
    let chains = enumerate_chains(dag);
    let relevant: Vec<_> = chains
        .iter()
        .filter(|c| {
            target_sink_node.is_none_or(|t| {
                c.vertices.last().map(|&v| dag.vertex(v).node == t).unwrap_or(false)
            })
        })
        .collect();
    let critical_chain = relevant
        .iter()
        .max_by_key(|c| latency_bound(dag, c))
        .map(|c| c.describe(dag))
        .unwrap_or_default();

    // Priorities: within each relevant chain, *later* stages get higher
    // priority so in-flight data drains through the pipeline instead of
    // being preempted by fresh releases; a node on several chains keeps
    // its maximum.
    let mut prio: std::collections::HashMap<String, i32> = std::collections::HashMap::new();
    for c in &relevant {
        let mut nodes: Vec<String> =
            c.vertices.iter().map(|&v| dag.vertex(v).node.clone()).collect();
        nodes.dedup();
        for (pos, node) in nodes.iter().enumerate() {
            let p = pos as i32 + 1;
            prio.entry(node.clone())
                .and_modify(|cur| *cur = (*cur).max(p))
                .or_insert(p);
        }
    }
    let prio_of = |node: &str| -> i32 { prio.get(node).copied().unwrap_or(0) };

    // Isolation: heaviest nodes above the threshold, while spare cores
    // remain (leave at least one core for the shared pool).
    let spare = cpus.saturating_sub(1);
    let mut assignments: Vec<NodeAssignment> = Vec::new();
    let mut next_core = 0usize;
    for nl in &loads {
        let dedicated_core = if nl.load >= isolation_threshold && next_core < spare {
            let c = next_core;
            next_core += 1;
            Some(c)
        } else {
            None
        };
        assignments.push(NodeAssignment {
            node: nl.node.clone(),
            priority: prio_of(&nl.node),
            dedicated_core,
            load: nl.load,
        });
    }
    ScheduleProposal { assignments, critical_chain }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_core::{CallbackRecord, CbList, Dag, ExecStats};
    use rtms_trace::{CallbackId, CallbackKind, Pid};
    use std::collections::HashMap;

    /// Chain n1 -> n2 -> n3 with loads 10%, 60%, 5% over 1 s.
    fn model() -> Dag {
        let mk = |pid: u32, id: u64, in_t: Option<&str>, out: &[&str], total_ms: u64| {
            let times: Vec<_> =
                (0..10).map(|_| rtms_trace::Nanos::from_millis(total_ms / 10)).collect();
            CallbackRecord {
                pid: Pid::new(pid),
                id: CallbackId::new(id),
                kind: if in_t.is_none() {
                    CallbackKind::Timer
                } else {
                    CallbackKind::Subscriber
                },
                in_topic: in_t.map(std::sync::Arc::from),
                out_topics: out.iter().map(|s| std::sync::Arc::from(*s)).collect(),
                is_sync_subscriber: false,
                stats: ExecStats::from_samples(times.iter().copied()),
                exec_times: times,
                start_times: vec![rtms_trace::Nanos::ZERO],
            }
        };
        let lists = vec![
            (Pid::new(1), [mk(1, 1, None, &["/a"], 100)].into_iter().collect::<CbList>()),
            (Pid::new(2), [mk(2, 2, Some("/a"), &["/b"], 600)].into_iter().collect()),
            (Pid::new(3), [mk(3, 3, Some("/b"), &[], 50)].into_iter().collect()),
        ];
        let names: HashMap<Pid, String> =
            [(Pid::new(1), "n1".into()), (Pid::new(2), "n2".into()), (Pid::new(3), "n3".into())]
                .into();
        Dag::from_cblists(&lists, &names)
    }

    #[test]
    fn chain_priorities_increase_toward_the_sink() {
        let dag = model();
        let p = propose_schedule(&dag, rtms_trace::Nanos::from_secs(1), 4, 0.5);
        assert_eq!(p.for_node("n1").expect("n1").priority, 1);
        assert_eq!(p.for_node("n2").expect("n2").priority, 2);
        assert_eq!(p.for_node("n3").expect("n3").priority, 3);
        assert!(p.critical_chain.contains("n1"));
    }

    #[test]
    fn target_sink_restricts_promotion() {
        let dag = model();
        let p = propose_schedule_for(
            &dag,
            rtms_trace::Nanos::from_secs(1),
            4,
            0.5,
            Some("n3"),
        );
        assert!(p.for_node("n3").expect("n3").priority > 0);
        // A sink that matches no chain promotes nothing.
        let p_none = propose_schedule_for(
            &dag,
            rtms_trace::Nanos::from_secs(1),
            4,
            0.5,
            Some("nope"),
        );
        assert!(p_none.assignments.iter().all(|a| a.priority == 0));
        assert!(p_none.critical_chain.is_empty());
    }

    #[test]
    fn heavy_node_isolated() {
        let dag = model();
        let p = propose_schedule(&dag, rtms_trace::Nanos::from_secs(1), 4, 0.5);
        assert_eq!(p.for_node("n2").expect("n2").dedicated_core, Some(0), "60% load isolated");
        assert_eq!(p.for_node("n1").expect("n1").dedicated_core, None);
        assert!((p.for_node("n2").expect("n2").load - 0.6).abs() < 1e-9);
    }

    #[test]
    fn isolation_limited_by_cores() {
        let dag = model();
        // With 1 CPU there is no spare core to dedicate.
        let p = propose_schedule(&dag, rtms_trace::Nanos::from_secs(1), 1, 0.01);
        assert!(p.assignments.iter().all(|a| a.dedicated_core.is_none()));
        // With 2 CPUs exactly one (the heaviest) gets isolated.
        let p = propose_schedule(&dag, rtms_trace::Nanos::from_secs(1), 2, 0.01);
        let isolated: Vec<_> =
            p.assignments.iter().filter(|a| a.dedicated_core.is_some()).collect();
        assert_eq!(isolated.len(), 1);
        assert_eq!(isolated[0].node, "n2");
    }

    #[test]
    fn empty_model_empty_proposal() {
        let p = propose_schedule(&Dag::new(), rtms_trace::Nanos::from_secs(1), 4, 0.5);
        assert!(p.assignments.is_empty());
        assert!(p.critical_chain.is_empty());
        assert_eq!(p.for_node("x"), None);
    }
}
