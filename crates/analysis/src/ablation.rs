//! Ablation: why a multi-caller service needs per-caller vertices.
//!
//! Sec. IV argues that modeling a service invoked by `n` clients as a
//! single vertex with `n` incoming and `n` outgoing edges creates `n × n`
//! chains through the vertex — of which `n² - n` are *spurious*
//! cross-caller chains (e.g. `SC3 → SV3 → CL4` in Fig. 3a, "which is
//! incorrect"). This module builds the single-vertex variant of a model
//! and counts the difference.

use crate::chains::enumerate_chains;
use rtms_core::{Dag, VertexKind};
use rtms_trace::CallbackKind;

/// Comparison between the paper's per-caller service model and the naive
/// single-vertex model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpuriousChains {
    /// Chains in the correctly split model.
    pub split_chains: usize,
    /// Chains when each service collapses to one vertex.
    pub single_vertex_chains: usize,
}

impl SpuriousChains {
    /// Chains that exist only because of the wrong modeling.
    pub fn spurious(&self) -> usize {
        self.single_vertex_chains.saturating_sub(self.split_chains)
    }
}

/// Builds the single-vertex-service variant of `dag`: all service vertices
/// of one node that share their undecorated request topic are collapsed
/// into one vertex carrying the union of the edges.
fn collapse_services(dag: &Dag) -> Dag {
    // Work on a serialized copy: collapse = merge vertices whose node +
    // base in_topic coincide, keeping all in/out topics.
    let mut collapsed = Dag::new();
    collapsed.merge(dag); // structural clone via merge into empty
    // Identify service-vertex groups by (node, base request topic).
    let mut groups: std::collections::HashMap<(String, String), Vec<usize>> =
        std::collections::HashMap::new();
    for (i, v) in collapsed.vertices().iter().enumerate() {
        if v.kind == VertexKind::Callback(CallbackKind::Service) {
            let base = v
                .in_topic
                .as_deref()
                .map(|t| t.split('#').next().unwrap_or(t).to_string())
                .unwrap_or_default();
            groups.entry((v.node.clone(), base)).or_default().push(i);
        }
    }
    // Rebuild: vertices with unified topic names so the single vertex
    // matches every caller edge and every client edge.
    let mut clone = collapsed.clone();
    for ((_, base), members) in groups {
        if members.len() < 2 {
            continue;
        }
        clone = rebuild_with_undecorated_service(&clone, &base);
    }
    clone
}

/// Strips the per-caller/per-client decorations related to `base` from all
/// vertices, making the service and its RPC topics collapse.
fn rebuild_with_undecorated_service(dag: &Dag, base: &str) -> Dag {
    use rtms_core::{CallbackRecord, CbList};
    use rtms_trace::{CallbackId, Pid};
    use std::collections::HashMap;

    let strip = |t: &std::sync::Arc<str>| -> std::sync::Arc<str> {
        if t.starts_with(base) {
            std::sync::Arc::from(base)
        } else {
            std::sync::Arc::clone(t)
        }
    };
    // Reconstruct per-node callback lists from the vertices (the inverse
    // of from_cblists at the undetailed level), with stripped topics.
    let mut lists: Vec<(Pid, CbList)> = Vec::new();
    let mut names: HashMap<Pid, String> = HashMap::new();
    let mut node_pid: HashMap<String, Pid> = HashMap::new();
    let mut next_pid = 1u32;
    let mut next_id = 1u64;
    for v in dag.vertices() {
        if v.kind == VertexKind::AndJunction {
            continue;
        }
        let kind = match v.kind {
            VertexKind::Callback(k) => k,
            VertexKind::AndJunction => unreachable!(),
        };
        let pid = *node_pid.entry(v.node.clone()).or_insert_with(|| {
            let p = Pid::new(next_pid);
            next_pid += 1;
            names.insert(p, v.node.clone());
            p
        });
        let rec = CallbackRecord {
            pid,
            id: CallbackId::new(next_id),
            kind,
            in_topic: v.in_topic.as_ref().map(strip),
            out_topics: v.out_topics.iter().map(strip).collect(),
            is_sync_subscriber: v.is_sync_member,
            stats: v.stats.clone(),
            exec_times: v.exec_times.clone(),
            start_times: vec![],
        };
        next_id += 1;
        match lists.iter_mut().find(|(p, _)| *p == pid) {
            Some((_, list)) => list.add_instance(rec),
            None => {
                let list: CbList = [rec].into_iter().collect();
                lists.push((pid, list));
            }
        }
    }
    Dag::from_cblists(&lists, &names)
}

/// Counts chains under both service models.
pub fn spurious_chain_report(dag: &Dag) -> SpuriousChains {
    let split_chains = enumerate_chains(dag).len();
    let single = collapse_services(dag);
    let single_vertex_chains = enumerate_chains(&single).len();
    SpuriousChains { split_chains, single_vertex_chains }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_core::{CallbackRecord, CbList, ExecStats};
    use rtms_trace::{CallbackId, Nanos, Pid};
    use std::collections::HashMap;

    fn rec(
        pid: u32,
        id: u64,
        kind: CallbackKind,
        in_topic: Option<&str>,
        outs: &[&str],
    ) -> CallbackRecord {
        CallbackRecord {
            pid: Pid::new(pid),
            id: CallbackId::new(id),
            kind,
            in_topic: in_topic.map(std::sync::Arc::from),
            out_topics: outs.iter().map(|s| std::sync::Arc::from(*s)).collect(),
            is_sync_subscriber: false,
            stats: ExecStats::from_samples([Nanos::from_millis(1)]),
            exec_times: vec![Nanos::from_millis(1)],
            start_times: vec![Nanos::ZERO],
        }
    }

    /// Two callers -> split service (2 vertices) -> two clients.
    fn split_service_dag() -> Dag {
        let lists = vec![
            (Pid::new(1), [
                rec(1, 1, CallbackKind::Timer, None, &["/svRequest#caller1"]),
                rec(1, 2, CallbackKind::Client, Some("/svReply#client1"), &[]),
            ].into_iter().collect::<CbList>()),
            (Pid::new(2), [
                rec(2, 3, CallbackKind::Timer, None, &["/svRequest#caller2"]),
                rec(2, 4, CallbackKind::Client, Some("/svReply#client2"), &[]),
            ].into_iter().collect()),
            (Pid::new(3), [
                rec(3, 5, CallbackKind::Service, Some("/svRequest#caller1"), &["/svReply#client1"]),
                rec(3, 5, CallbackKind::Service, Some("/svRequest#caller2"), &["/svReply#client2"]),
            ].into_iter().collect()),
        ];
        let names: HashMap<Pid, String> =
            [(Pid::new(1), "a".into()), (Pid::new(2), "b".into()), (Pid::new(3), "srv".into())]
                .into();
        Dag::from_cblists(&lists, &names)
    }

    #[test]
    fn split_model_has_no_cross_caller_chains() {
        let dag = split_service_dag();
        let report = spurious_chain_report(&dag);
        assert_eq!(report.split_chains, 2, "caller1->sv->client1, caller2->sv->client2");
        assert_eq!(report.single_vertex_chains, 4, "n*n chains through one vertex");
        assert_eq!(report.spurious(), 2, "n^2 - n spurious chains for n = 2");
    }
}
