//! Computation-chain enumeration and latency bounds.

use rtms_core::{Dag, VertexId};
use rtms_trace::Nanos;

/// A computation chain: a root-to-sink path through the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// The vertices along the chain, source first.
    pub vertices: Vec<VertexId>,
}

impl Chain {
    /// Human-readable rendering: `node/kind -> node/kind -> ...`.
    pub fn describe(&self, dag: &Dag) -> String {
        self.vertices
            .iter()
            .map(|&v| format!("{}({})", dag.vertex(v).node, dag.vertex(v).kind))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Enumerates every root-to-sink path of the model via depth-first search.
///
/// The number of chains is what downstream response-time analyses iterate
/// over; it is also the quantity the service-splitting ablation compares.
pub fn enumerate_chains(dag: &Dag) -> Vec<Chain> {
    let mut chains = Vec::new();
    let mut stack: Vec<VertexId> = Vec::new();
    // The on-path check makes enumeration terminate even on models
    // synthesized from corrupted traces, which may contain cycles; a
    // back-edge simply ends the chain at the repeated vertex.
    fn dfs(dag: &Dag, v: VertexId, stack: &mut Vec<VertexId>, out: &mut Vec<Chain>) {
        if stack.contains(&v) {
            out.push(Chain { vertices: stack.clone() });
            return;
        }
        stack.push(v);
        let succ = dag.successors(v);
        if succ.is_empty() {
            out.push(Chain { vertices: stack.clone() });
        } else {
            for s in succ {
                dfs(dag, s, stack, out);
            }
        }
        stack.pop();
    }
    for root in dag.roots() {
        dfs(dag, root, &mut stack, &mut chains);
    }
    chains
}

/// A simple end-to-end latency bound for a chain: the sum of measured
/// worst-case execution times plus, for every hop, one sampling delay of
/// the consumer (bounded by the producer's period estimate when available).
///
/// This mirrors the structure of classic chain-latency bounds (e.g.
/// Casini et al., ECRTS'19) on the measured model; it is a *bound
/// template*, not a replacement for a full response-time analysis.
pub fn latency_bound(dag: &Dag, chain: &Chain) -> Nanos {
    let mut bound = Nanos::ZERO;
    for &v in &chain.vertices {
        if let Some(w) = dag.vertex(v).stats.mwcet() {
            bound += w;
        }
        if let Some(p) = dag.vertex(v).period.mwcet() {
            // Worst-case sampling delay of a periodic vertex.
            bound += p;
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_core::{CallbackRecord, CbList, ExecStats};
    use rtms_trace::{CallbackId, CallbackKind, Pid};
    use std::collections::HashMap;

    fn rec(
        pid: u32,
        id: u64,
        kind: CallbackKind,
        in_topic: Option<&str>,
        outs: &[&str],
        wcet_ms: u64,
    ) -> CallbackRecord {
        CallbackRecord {
            pid: Pid::new(pid),
            id: CallbackId::new(id),
            kind,
            in_topic: in_topic.map(std::sync::Arc::from),
            out_topics: outs.iter().map(|s| std::sync::Arc::from(*s)).collect(),
            is_sync_subscriber: false,
            stats: ExecStats::from_samples([Nanos::from_millis(wcet_ms)]),
            exec_times: vec![Nanos::from_millis(wcet_ms)],
            start_times: vec![Nanos::ZERO],
        }
    }

    fn diamond() -> Dag {
        // T -> A -> C and T -> B -> C.
        let lists = vec![
            (Pid::new(1), [rec(1, 1, CallbackKind::Timer, None, &["/t"], 1)].into_iter().collect::<CbList>()),
            (Pid::new(2), [
                rec(2, 2, CallbackKind::Subscriber, Some("/t"), &["/a"], 2),
                rec(2, 3, CallbackKind::Subscriber, Some("/t"), &["/b"], 3),
            ].into_iter().collect()),
            (Pid::new(3), [
                rec(3, 4, CallbackKind::Subscriber, Some("/a"), &["/c"], 4),
                rec(3, 5, CallbackKind::Subscriber, Some("/b"), &["/c"], 5),
            ].into_iter().collect()),
            (Pid::new(4), [rec(4, 6, CallbackKind::Subscriber, Some("/c"), &[], 6)].into_iter().collect()),
        ];
        let names: HashMap<Pid, String> = (1..=4)
            .map(|i| (Pid::new(i), format!("n{i}")))
            .collect();
        Dag::from_cblists(&lists, &names)
    }

    #[test]
    fn enumerates_all_paths() {
        let dag = diamond();
        let chains = enumerate_chains(&dag);
        assert_eq!(chains.len(), 2, "two root-to-sink paths");
        for c in &chains {
            assert_eq!(c.vertices.len(), 4);
            let desc = c.describe(&dag);
            assert!(desc.starts_with("n1(timer)"), "{desc}");
            assert!(desc.ends_with("n4(subscriber)"), "{desc}");
        }
    }

    #[test]
    fn latency_bound_sums_wcets() {
        let dag = diamond();
        let chains = enumerate_chains(&dag);
        let bounds: Vec<Nanos> = chains.iter().map(|c| latency_bound(&dag, c)).collect();
        // Chains: 1+2+4+6=13 and 1+3+5+6=15 (timer has a single start, so
        // no period estimate contributes).
        let mut ms: Vec<f64> = bounds.iter().map(|b| b.as_millis_f64()).collect();
        ms.sort_by(f64::total_cmp);
        assert_eq!(ms, vec![13.0, 15.0]);
    }

    #[test]
    fn empty_dag_no_chains() {
        assert!(enumerate_chains(&Dag::new()).is_empty());
    }
}
