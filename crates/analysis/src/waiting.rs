//! Callback waiting-time measurement (Sec. VII extension).
//!
//! "We can add a tracepoint to `sched_wakeup` and compute the waiting time
//! of a callback" — the delay between the executor thread becoming
//! runnable (data arrived, thread woken) and the callback actually
//! starting (thread scheduled, `execute_*` entered). Large waiting times
//! reveal scheduling interference that execution-time measurements alone
//! cannot show.

use rtms_trace::{Nanos, Pid, RosPayload, SchedEventKind, Trace};

/// One measured wait: the gap between the executor's wakeup and the
/// callback-start event that followed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitMeasurement {
    /// When the executor thread was woken.
    pub wakeup: Nanos,
    /// When the callback started.
    pub start: Nanos,
    /// `start - wakeup`.
    pub waiting: Nanos,
}

/// Measures the waiting time of every callback instance of `pid`: for each
/// callback-start event, the last `sched_wakeup` of the thread since the
/// previous callback end.
///
/// Requires a trace recorded with wakeups enabled
/// (`WorldBuilder::record_wakeups`); callback instances with no preceding
/// wakeup in their idle window (e.g. back-to-back dispatch from a
/// non-empty queue) are skipped.
pub fn waiting_times(trace: &Trace, pid: Pid) -> Vec<WaitMeasurement> {
    let mut wakeups: Vec<Nanos> = trace
        .sched_events()
        .iter()
        .filter_map(|e| match &e.kind {
            SchedEventKind::Wakeup { pid: woken, .. } if *woken == pid => Some(e.time),
            _ => None,
        })
        .collect();
    wakeups.sort();

    let mut out = Vec::new();
    let mut idle_since = Nanos::ZERO;
    for ev in trace.ros_events_for(pid) {
        match &ev.payload {
            RosPayload::CallbackStart { .. } => {
                // Last wakeup inside the idle window (idle_since, ev.time].
                let wake = wakeups
                    .iter()
                    .rev()
                    .find(|&&w| w > idle_since && w <= ev.time)
                    .copied();
                if let Some(wakeup) = wake {
                    out.push(WaitMeasurement {
                        wakeup,
                        start: ev.time,
                        waiting: ev.time - wakeup,
                    });
                }
            }
            RosPayload::CallbackEnd { .. } => {
                idle_since = ev.time;
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_trace::{CallbackKind, Cpu, Priority, RosEvent, SchedEvent};

    #[test]
    fn wait_measured_between_wakeup_and_start() {
        let pid = Pid::new(5);
        let mut trace = Trace::new();
        trace.push_sched(SchedEvent::wakeup(
            Nanos::from_millis(10),
            Cpu::new(0),
            pid,
            Priority::NORMAL,
        ));
        trace.push_ros(RosEvent::new(
            Nanos::from_millis(13),
            pid,
            RosPayload::CallbackStart { kind: CallbackKind::Subscriber },
        ));
        trace.push_ros(RosEvent::new(
            Nanos::from_millis(15),
            pid,
            RosPayload::CallbackEnd { kind: CallbackKind::Subscriber },
        ));
        let waits = waiting_times(&trace, pid);
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].waiting, Nanos::from_millis(3));
    }

    #[test]
    fn wakeups_before_previous_end_are_not_reused() {
        let pid = Pid::new(5);
        let mut trace = Trace::new();
        // Wakeup for instance 1.
        trace.push_sched(SchedEvent::wakeup(Nanos::from_millis(1), Cpu::new(0), pid, Priority::NORMAL));
        trace.push_ros(RosEvent::new(
            Nanos::from_millis(2),
            pid,
            RosPayload::CallbackStart { kind: CallbackKind::Timer },
        ));
        trace.push_ros(RosEvent::new(
            Nanos::from_millis(4),
            pid,
            RosPayload::CallbackEnd { kind: CallbackKind::Timer },
        ));
        // Instance 2 starts with no fresh wakeup: skipped.
        trace.push_ros(RosEvent::new(
            Nanos::from_millis(6),
            pid,
            RosPayload::CallbackStart { kind: CallbackKind::Timer },
        ));
        trace.push_ros(RosEvent::new(
            Nanos::from_millis(8),
            pid,
            RosPayload::CallbackEnd { kind: CallbackKind::Timer },
        ));
        let waits = waiting_times(&trace, pid);
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].waiting, Nanos::from_millis(1));
    }

    #[test]
    fn empty_trace_no_waits() {
        assert!(waiting_times(&Trace::new(), Pid::new(1)).is_empty());
    }
}
