//! Measured end-to-end latency of computation chains.
//!
//! Implements the extension sketched in Sec. VII of the paper: "We are
//! logging the source timestamp of data on publisher and subscriber sides
//! using which we can traverse data flow through a computation chain and
//! calculate its end-to-end latency." Starting from every publication on a
//! source topic, the data flow is followed through (topic, srcTS) matches
//! — a take with the same source timestamp identifies the consuming
//! callback instance, whose own `dds_write` events continue the lineage —
//! until a write on the sink topic is reached.
//!
//! Lineages can die naturally: a synchronizer's output is published by the
//! *last-arriving* member instance, so data consumed by the other member
//! has no continuation; such samples produce no measurement.

use rtms_trace::{Nanos, Pid, RosPayload, SourceTimestamp, Trace};
use std::collections::{HashMap, HashSet};

/// One successful source-to-sink traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct E2eMeasurement {
    /// When the source sample was written.
    pub source_write: Nanos,
    /// When the sink sample derived from it was written.
    pub sink_write: Nanos,
    /// `sink_write - source_write`.
    pub latency: Nanos,
}

#[derive(Debug)]
struct Instance {
    start: Nanos,
    end: Nanos,
    /// `(time, topic name, srcTS)` of writes inside the window.
    writes: Vec<(Nanos, String, SourceTimestamp)>,
}

/// Per-node instance windows with their writes, plus a take index.
struct FlowIndex {
    instances: HashMap<Pid, Vec<Instance>>,
    /// srcTS -> consuming (pid, take time) pairs.
    takes: HashMap<SourceTimestamp, Vec<(Pid, Nanos)>>,
}

impl FlowIndex {
    fn build(trace: &Trace) -> FlowIndex {
        let mut instances: HashMap<Pid, Vec<Instance>> = HashMap::new();
        let mut open: HashMap<Pid, Instance> = HashMap::new();
        let mut takes: HashMap<SourceTimestamp, Vec<(Pid, Nanos)>> = HashMap::new();
        let mut events = trace.ros_events().to_vec();
        events.sort_by_key(|e| e.time);
        for e in &events {
            match &e.payload {
                RosPayload::CallbackStart { .. } => {
                    open.insert(
                        e.pid,
                        Instance { start: e.time, end: Nanos::MAX, writes: Vec::new() },
                    );
                }
                RosPayload::TakeData { src_ts, .. }
                | RosPayload::TakeRequest { src_ts, .. }
                | RosPayload::TakeResponse { src_ts, .. } => {
                    takes.entry(*src_ts).or_default().push((e.pid, e.time));
                }
                RosPayload::DdsWrite { topic, src_ts } => {
                    if let Some(inst) = open.get_mut(&e.pid) {
                        inst.writes.push((e.time, topic.name().to_string(), *src_ts));
                    }
                }
                RosPayload::CallbackEnd { .. } => {
                    if let Some(mut inst) = open.remove(&e.pid) {
                        inst.end = e.time;
                        instances.entry(e.pid).or_default().push(inst);
                    }
                }
                _ => {}
            }
        }
        FlowIndex { instances, takes }
    }

    /// The instance of `pid` whose window contains `t`.
    fn instance_at(&self, pid: Pid, t: Nanos) -> Option<&Instance> {
        self.instances.get(&pid)?.iter().find(|i| i.start <= t && t <= i.end)
    }
}

/// Measures the end-to-end latency from every publication on
/// `source_topic` to the derived publication on `sink_topic`.
///
/// Returns one measurement per source sample whose lineage reaches the
/// sink. Chains that fork reach the sink at most once per source sample
/// (the earliest arrival is reported).
pub fn end_to_end_latencies(
    trace: &Trace,
    source_topic: &str,
    sink_topic: &str,
) -> Vec<E2eMeasurement> {
    let index = FlowIndex::build(trace);
    let mut events = trace.ros_events().to_vec();
    events.sort_by_key(|e| e.time);

    let sources: Vec<(Nanos, SourceTimestamp)> = events
        .iter()
        .filter_map(|e| match &e.payload {
            RosPayload::DdsWrite { topic, src_ts } if topic.name() == source_topic => {
                Some((e.time, *src_ts))
            }
            _ => None,
        })
        .collect();

    let mut out = Vec::new();
    for (t0, s0) in sources {
        let mut best: Option<Nanos> = None;
        let mut frontier = vec![s0];
        let mut visited: HashSet<SourceTimestamp> = HashSet::new();
        while let Some(s) = frontier.pop() {
            if !visited.insert(s) {
                continue;
            }
            let Some(consumers) = index.takes.get(&s) else { continue };
            for &(pid, take_time) in consumers {
                let Some(inst) = index.instance_at(pid, take_time) else { continue };
                for (wt, wtopic, wts) in &inst.writes {
                    if wtopic == sink_topic {
                        best = Some(best.map_or(*wt, |b: Nanos| b.min(*wt)));
                    } else {
                        frontier.push(*wts);
                    }
                }
            }
        }
        if let Some(sink_write) = best {
            out.push(E2eMeasurement { source_write: t0, sink_write, latency: sink_write - t0 });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtms_trace::{CallbackId, CallbackKind, RosEvent, Topic};

    fn ev(ms: u64, pid: u32, payload: RosPayload) -> RosEvent {
        RosEvent::new(Nanos::from_millis(ms), Pid::new(pid), payload)
    }

    /// T (pid 1) writes /a at 1ms; S1 (pid 2) takes it at 5ms, writes /b at
    /// 8ms; S2 (pid 3) takes /b at 10ms, writes /c at 14ms.
    fn chain_trace() -> Trace {
        let mut t = Trace::new();
        t.push_ros(ev(0, 1, RosPayload::CallbackStart { kind: CallbackKind::Timer }));
        t.push_ros(ev(0, 1, RosPayload::TimerCall { callback: CallbackId::new(1) }));
        t.push_ros(ev(1, 1, RosPayload::DdsWrite {
            topic: Topic::plain("/a"),
            src_ts: SourceTimestamp::new(100),
        }));
        t.push_ros(ev(1, 1, RosPayload::CallbackEnd { kind: CallbackKind::Timer }));
        t.push_ros(ev(5, 2, RosPayload::CallbackStart { kind: CallbackKind::Subscriber }));
        t.push_ros(ev(5, 2, RosPayload::TakeData {
            callback: CallbackId::new(2),
            topic: Topic::plain("/a"),
            src_ts: SourceTimestamp::new(100),
        }));
        t.push_ros(ev(8, 2, RosPayload::DdsWrite {
            topic: Topic::plain("/b"),
            src_ts: SourceTimestamp::new(101),
        }));
        t.push_ros(ev(8, 2, RosPayload::CallbackEnd { kind: CallbackKind::Subscriber }));
        t.push_ros(ev(10, 3, RosPayload::CallbackStart { kind: CallbackKind::Subscriber }));
        t.push_ros(ev(10, 3, RosPayload::TakeData {
            callback: CallbackId::new(3),
            topic: Topic::plain("/b"),
            src_ts: SourceTimestamp::new(101),
        }));
        t.push_ros(ev(14, 3, RosPayload::DdsWrite {
            topic: Topic::plain("/c"),
            src_ts: SourceTimestamp::new(102),
        }));
        t.push_ros(ev(14, 3, RosPayload::CallbackEnd { kind: CallbackKind::Subscriber }));
        t
    }

    #[test]
    fn follows_src_ts_lineage() {
        let trace = chain_trace();
        let m = end_to_end_latencies(&trace, "/a", "/c");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].source_write, Nanos::from_millis(1));
        assert_eq!(m[0].sink_write, Nanos::from_millis(14));
        assert_eq!(m[0].latency, Nanos::from_millis(13));
    }

    #[test]
    fn intermediate_hop_also_measurable() {
        let trace = chain_trace();
        let m = end_to_end_latencies(&trace, "/a", "/b");
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].latency, Nanos::from_millis(7));
    }

    #[test]
    fn dead_lineage_yields_no_measurement() {
        let trace = chain_trace();
        assert!(end_to_end_latencies(&trace, "/a", "/nope").is_empty());
        assert!(end_to_end_latencies(&trace, "/c", "/a").is_empty());
    }
}
