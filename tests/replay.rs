//! Replay regression tests: the committed golden corpus and large-scale
//! record→replay equivalence.
//!
//! The corpus under `tests/corpus/` pins the binary trace format *and*
//! the synthesis semantics at once: each committed `.seg` file must keep
//! decoding byte-for-byte, and replaying it must keep producing the
//! model digest committed in `MANIFEST.json`. Regenerate with
//! `cargo run --release -p rtms-bench --bin record -- corpus=tests/corpus`
//! only when intentionally changing the format or the synthesis
//! semantics (see `docs/TRACE_FORMAT.md`).

use rtms_bench::{bench_world_profiled, live_model, replay_path, RecordMeta};
use rtms_core::SynthesisSession;
use rtms_trace::{Nanos, SegmentReader, SegmentWriter};
use rtms_workloads::{WorldProfile, CORPUS_CASES};
use serde::Deserialize;
use std::path::PathBuf;

/// Mirror of the manifest entries `record corpus=` writes.
struct ManifestEntry {
    name: String,
    file: String,
    secs: u64,
    apps: u64,
    seed: u64,
    segment_ms: u64,
    profile: WorldProfile,
    segments: usize,
    events: u64,
    bytes: u64,
    model_digest: String,
}

// Manual impl: `profile` is omitted from the manifest for standard
// worlds, and the vendored serde derive has no `default` attribute.
impl Deserialize for ManifestEntry {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = serde::expect_object(v)?;
        Ok(ManifestEntry {
            name: String::from_value(serde::expect_field(obj, "name")?)?,
            file: String::from_value(serde::expect_field(obj, "file")?)?,
            secs: u64::from_value(serde::expect_field(obj, "secs")?)?,
            apps: u64::from_value(serde::expect_field(obj, "apps")?)?,
            seed: u64::from_value(serde::expect_field(obj, "seed")?)?,
            segment_ms: u64::from_value(serde::expect_field(obj, "segment_ms")?)?,
            profile: match obj.iter().find(|(k, _)| k == "profile") {
                Some((_, v)) => WorldProfile::from_value(v)?,
                None => WorldProfile::Standard,
            },
            segments: usize::from_value(serde::expect_field(obj, "segments")?)?,
            events: u64::from_value(serde::expect_field(obj, "events")?)?,
            bytes: u64::from_value(serde::expect_field(obj, "bytes")?)?,
            model_digest: String::from_value(serde::expect_field(obj, "model_digest")?)?,
        })
    }
}

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn load_manifest() -> Vec<ManifestEntry> {
    let path = corpus_dir().join("MANIFEST.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e} (is the corpus committed?)", path.display()));
    serde_json::from_str(&json).expect("MANIFEST.json parses")
}

/// Every committed corpus file still decodes, still carries its recorded
/// parameters, and still replays to the committed model digest. This is
/// the backward-compatibility pin: a codec change that breaks years-old
/// files, or a synthesis change that silently alters models, fails here.
#[test]
fn corpus_replays_to_committed_digests() {
    let manifest = load_manifest();
    assert_eq!(
        manifest.len(),
        CORPUS_CASES.len(),
        "manifest out of sync with CORPUS_CASES; regenerate the corpus"
    );
    for entry in &manifest {
        let case = CORPUS_CASES
            .iter()
            .find(|c| c.name == entry.name)
            .unwrap_or_else(|| panic!("manifest case {:?} not in CORPUS_CASES", entry.name));
        let path = corpus_dir().join(&entry.file);
        let on_disk = std::fs::metadata(&path)
            .unwrap_or_else(|e| panic!("stat {}: {e}", path.display()))
            .len();
        assert_eq!(on_disk, entry.bytes, "{}: file size drifted", entry.name);

        let outcome =
            replay_path(&path).unwrap_or_else(|e| panic!("replaying {}: {e}", entry.name));
        assert_eq!(outcome.events, entry.events, "{}: event count drifted", entry.name);
        assert_eq!(outcome.segments, entry.segments, "{}: segment count drifted", entry.name);
        assert_eq!(
            outcome.meta,
            Some(RecordMeta {
                secs: case.secs,
                apps: case.apps,
                seed: case.seed,
                segment_ms: case.segment_ms,
                profile: case.profile,
            }),
            "{}: meta frame drifted",
            entry.name
        );
        assert_eq!(
            format!("{:016x}", outcome.model.digest()),
            entry.model_digest,
            "{}: replayed model digest drifted from the committed one",
            entry.name
        );
    }
}

/// Today's live synthesis of each corpus world still produces the
/// committed digest — the committed file, the committed digest, and the
/// current simulator+synthesizer all agree.
#[test]
fn corpus_digests_match_live_synthesis() {
    for entry in load_manifest() {
        let meta = RecordMeta {
            secs: entry.secs,
            apps: entry.apps,
            seed: entry.seed,
            segment_ms: entry.segment_ms,
            profile: entry.profile,
        };
        let live = live_model(meta);
        assert_eq!(
            format!("{:016x}", live.digest()),
            entry.model_digest,
            "{}: live synthesis no longer matches the committed digest",
            entry.name
        );
    }
}

/// Record→replay equivalence across a wide sweep of generated apps under
/// every scenario profile — multi-threaded executors interleave callback
/// instances across workers, lossy QoS drops and reorders samples, bursty
/// publishers back the executor up — and in every interleaving the
/// replayed model is byte-identical (as canonical JSON) to the live one.
/// Debug builds sweep a subset to keep `cargo test` quick; release builds
/// (and the CI replay job) cover the full sweep.
#[test]
fn generated_apps_replay_byte_identical() {
    let seeds = if cfg!(debug_assertions) { 12u64 } else { 100 };
    let profiles = [
        WorldProfile::Standard,
        WorldProfile::MultiThreaded,
        WorldProfile::Lossy,
        WorldProfile::Bursty,
    ];
    for seed in 0..seeds {
        // Rotate profiles across the seed sweep (every profile still gets
        // dozens of seeds in release) instead of multiplying the runtime
        // by four.
        let profile = profiles[(seed % profiles.len() as u64) as usize];
        let meta = RecordMeta { secs: 1, apps: 1, seed, segment_ms: 250, profile };

        let mut world = bench_world_profiled(meta.apps, meta.seed, meta.profile);
        let mut writer = SegmentWriter::new(Vec::new()).expect("header");
        writer.set_meta(&meta.to_json()).expect("meta");
        world
            .record_segments(
                &mut writer,
                Nanos::from_secs(meta.secs),
                Nanos::from_millis(meta.segment_ms),
            )
            .expect("record");
        let (file, stats) = writer.finish().expect("finish");
        assert!(stats.events > 0, "seed {seed} {profile:?}: empty recording");

        let mut reader = SegmentReader::new(file.as_slice()).expect("header");
        let mut session = SynthesisSession::new();
        session.feed_reader(&mut reader).expect("replay");
        let replayed = session.model();

        let live = live_model(meta);
        assert_eq!(
            serde_json::to_string(&replayed).expect("ser"),
            serde_json::to_string(&live).expect("ser"),
            "seed {seed} {profile:?}: replayed model is not byte-identical to the live model"
        );
    }
}
