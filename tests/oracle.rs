//! Differential oracle suite for the scenario axes: multi-threaded
//! executors and degraded QoS must never change what the synthesized
//! model *says* about an application.
//!
//! - A multi-threaded executor whose callbacks all serialize (pinned to
//!   the implicit default group, or to one declared mutually-exclusive
//!   group) is observationally equivalent to the single-threaded
//!   executor: the synthesized model is byte-identical as JSON.
//! - Reentrant groups genuinely overlap callback instances, and
//!   Algorithm 2 still reconstructs every instance's execution time
//!   exactly from the per-thread sched stream.
//! - Models synthesized under lossy QoS stay valid: no phantom vertices
//!   or edges relative to the reliable run of the same world, and timing
//!   watermarks stay bounded by the simulator's ground truth.

use ros2_tms::ros2::{
    AppBuilder, AppSpec, CallbackSpec, GroupKind, QosSpec, WorkModel, WorldBuilder,
};
use ros2_tms::synthesis::{synthesize, Dag, VertexKind};
use ros2_tms::trace::{CallbackKind, Nanos};
use ros2_tms::workloads::{generate_app, GeneratorConfig};
use std::collections::HashSet;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Variant {
    /// Single-threaded executors (the baseline).
    SingleThreaded,
    /// Three workers per node, no declared groups: everything serializes
    /// on the implicit default mutually-exclusive group.
    MtDefaultGroup,
    /// Three workers per node, all callbacks in one declared
    /// mutually-exclusive group (pinned to a non-primary worker).
    MtSerializedGroup,
}

/// A five-node AD-style pipeline: two sensor timers fused through a sync
/// group, a planner chaining an RPC into a command topic, and a sink.
fn pipeline_app(variant: Variant) -> AppSpec {
    let mut app = AppBuilder::new("oracle");
    let mut nodes = Vec::new();
    let src = app.node("sensors");
    app.timer(src, "TA", Nanos::from_millis(20), WorkModel::uniform_millis(0.2, 0.8))
        .publishes("/a");
    app.timer(src, "TB", Nanos::from_millis(30), WorkModel::uniform_millis(0.2, 0.8))
        .publishes("/b");
    let fuse = app.node("fusion");
    app.subscriber(fuse, "FA", "/a", WorkModel::uniform_millis(0.3, 0.9));
    app.subscriber(fuse, "FB", "/b", WorkModel::uniform_millis(0.3, 0.9));
    app.sync_group(fuse, "SYNC", ["FA", "FB"], ["/fused"]);
    let plan = app.node("planner");
    app.subscriber(plan, "P", "/fused", WorkModel::uniform_millis(0.5, 1.5)).calls("CL");
    app.client(plan, "CL", "/map", WorkModel::constant_millis(0.3)).publishes("/cmd");
    let srv = app.node("map_server");
    app.service(srv, "SV", "/map", WorkModel::constant_millis(1.0));
    let sink = app.node("actuator");
    app.subscriber(sink, "S", "/cmd", WorkModel::constant_millis(0.2));
    nodes.extend([src, fuse, plan, srv, sink]);

    if variant != Variant::SingleThreaded {
        let members: [(&str, Vec<&str>); 5] = [
            ("sensors", vec!["TA", "TB"]),
            ("fusion", vec!["FA", "FB"]),
            ("planner", vec!["P", "CL"]),
            ("map_server", vec!["SV"]),
            ("actuator", vec!["S"]),
        ];
        for (node, (name, cbs)) in nodes.into_iter().zip(members) {
            app.multi_threaded(node, 3);
            if variant == Variant::MtSerializedGroup {
                app.callback_group(
                    node,
                    format!("{name}_serial"),
                    GroupKind::MutuallyExclusive,
                    cbs,
                );
            }
        }
    }
    app.build().expect("valid app")
}

fn pipeline_model(variant: Variant, seed: u64) -> Dag {
    let mut world = WorldBuilder::new(4)
        .seed(seed)
        .app(pipeline_app(variant))
        .build()
        .expect("world builds");
    let trace = world.trace_run(Nanos::from_secs(1));
    synthesize(&trace)
}

/// The differential headline: for every seed, the model of the
/// multi-threaded worlds whose callbacks all serialize is byte-identical
/// (as canonical JSON) to the single-threaded model. Worker threads,
/// group pinning, and the extra wakeup fan-out must be invisible.
#[test]
fn serialized_group_mt_models_are_byte_identical_to_st() {
    for seed in 0..10u64 {
        let st = pipeline_model(Variant::SingleThreaded, seed);
        let st_json = serde_json::to_string(&st).expect("serialize");
        assert!(!st.vertices().is_empty(), "seed {seed}: baseline model is empty");
        for variant in [Variant::MtDefaultGroup, Variant::MtSerializedGroup] {
            let mt_json =
                serde_json::to_string(&pipeline_model(variant, seed)).expect("serialize");
            assert_eq!(
                mt_json, st_json,
                "seed {seed}: {variant:?} model diverged from the single-threaded oracle"
            );
        }
    }
}

/// Reentrant groups are the opposite oracle: instances of one callback
/// must genuinely overlap across workers, and Algorithm 2 must still
/// reconstruct every instance's execution time exactly.
#[test]
fn reentrant_groups_overlap_and_execution_times_stay_exact() {
    let mut app = AppBuilder::new("reentrant");
    let gen = app.node("gen");
    app.timer(gen, "T", Nanos::from_millis(4), WorkModel::constant_millis(0.1))
        .publishes("/work");
    let pool = app.node("pool");
    app.subscriber(pool, "S", "/work", WorkModel::constant_millis(12.0));
    app.multi_threaded(pool, 3);
    app.callback_group(pool, "re", GroupKind::Reentrant, ["S"]);

    let mut world = WorldBuilder::new(4)
        .seed(9)
        .app(app.build().expect("valid app"))
        .build()
        .expect("world builds");
    let trace = world.trace_run(Nanos::from_secs(1));
    let gt = world.ground_truth();
    let s = gt.id_of("S").expect("S registered");

    // Max concurrent instances of S across the pool's workers.
    let mut intervals: Vec<(Nanos, Nanos)> =
        gt.instances_of(s).map(|r| (r.start, r.end)).collect();
    intervals.sort();
    assert!(intervals.len() > 50, "only {} instances", intervals.len());
    let overlap = intervals
        .iter()
        .enumerate()
        .map(|(i, (start, _))| {
            intervals[..i].iter().filter(|(_, end)| end > start).count() + 1
        })
        .max()
        .expect("nonempty");
    assert!(overlap >= 2, "reentrant instances never overlapped (max depth {overlap})");

    // Algorithm 2 stays exact under the interleaved schedule.
    for rec in gt.instances() {
        let measured = ros2_tms::synthesis::execution_time(
            rec.start,
            rec.end,
            rec.pid,
            trace.sched_events(),
        );
        assert_eq!(measured, rec.issued, "exec-time reconstruction drifted for {:?}", rec.pid);
    }

    // The model still shows one producer feeding one consumer.
    let dag = synthesize(&trace);
    assert!(dag.is_acyclic());
    let sub = dag
        .vertices()
        .iter()
        .find(|v| v.kind == VertexKind::Callback(CallbackKind::Subscriber))
        .expect("subscriber vertex");
    assert!(sub.stats.count() > 50, "subscriber stats too thin: {}", sub.stats.count());
}

/// Vertex identity that is stable across QoS settings: node, kind, and
/// the undecorated input topic.
fn vertex_identity(dag: &Dag) -> HashSet<(String, String, String)> {
    dag.vertices()
        .iter()
        .map(|v| {
            let base_in = v
                .in_topic
                .as_deref()
                .map(|t| t.split('#').next().unwrap_or(t).to_string())
                .unwrap_or_default();
            (v.node.clone(), v.kind.to_string(), base_in)
        })
        .collect()
}

/// Edges as (producer identity, consumer identity, undecorated topic).
fn edge_identity(dag: &Dag) -> HashSet<(String, String, String)> {
    let key = |id: usize| {
        let v = &dag.vertices()[id];
        format!("{}|{}", v.node, v.kind)
    };
    dag.edges()
        .iter()
        .map(|e| {
            let base = e.topic.split('#').next().unwrap_or(&e.topic).to_string();
            (key(e.from.0), key(e.to.0), base)
        })
        .collect()
}

/// Models under drops, reorder, and jitter stay *valid*: every vertex and
/// edge of the lossy model exists in the reliable model of the same
/// seeded world (no phantom structure), timers keep their configured
/// periods, and Algorithm 2 stays exact against the simulator's ground
/// truth.
#[test]
fn lossy_models_never_grow_phantom_structure() {
    let qos = QosSpec { drop_prob: 0.2, reorder_bound: 3, jitter: Nanos::from_micros(300) };
    let config = GeneratorConfig::default();
    for seed in 0..8u64 {
        let app = generate_app(seed.wrapping_add(300), &config);
        let run = |qos: Option<QosSpec>| {
            let mut b = WorldBuilder::new(4).seed(seed).app(app.clone());
            if let Some(q) = qos {
                b = b.qos(q);
            }
            let mut world = b.build().expect("world builds");
            let trace = world.trace_run(Nanos::from_secs(2));
            (synthesize(&trace), world.ground_truth(), trace)
        };
        let (reliable, _, _) = run(None);
        let (lossy, gt, trace) = run(Some(qos));

        // No phantom vertices or edges: losing and reordering samples can
        // only ever thin the observed structure.
        let phantom_v: Vec<_> =
            vertex_identity(&lossy).difference(&vertex_identity(&reliable)).cloned().collect();
        assert!(phantom_v.is_empty(), "seed {seed}: phantom vertices {phantom_v:?}");
        let phantom_e: Vec<_> =
            edge_identity(&lossy).difference(&edge_identity(&reliable)).cloned().collect();
        assert!(phantom_e.is_empty(), "seed {seed}: phantom edges {phantom_e:?}");

        // Every vertex maps back to a callback the application declared.
        for v in lossy.vertices() {
            if v.kind == VertexKind::AndJunction {
                continue;
            }
            let declared = app.nodes.iter().any(|n| {
                n.name == v.node
                    && n.callbacks.iter().any(|cb| {
                        matches!(
                            (cb, &v.kind),
                            (CallbackSpec::Timer { .. }, VertexKind::Callback(CallbackKind::Timer))
                                | (
                                    CallbackSpec::Subscriber { .. },
                                    VertexKind::Callback(CallbackKind::Subscriber)
                                )
                                | (
                                    CallbackSpec::Service { .. },
                                    VertexKind::Callback(CallbackKind::Service)
                                )
                                | (
                                    CallbackSpec::Client { .. },
                                    VertexKind::Callback(CallbackKind::Client)
                                )
                        )
                    })
            });
            assert!(declared, "seed {seed}: vertex {} has no declared callback", v.merge_key());
        }

        // Watermarks stay bounded: timer period estimates track the
        // configured 50–200 ms range (drops never touch timer firings),
        // and exec-time reconstruction stays exact per instance.
        for v in lossy.vertices() {
            if v.kind == VertexKind::Callback(CallbackKind::Timer) {
                if let Some(p) = v.period.macet() {
                    let ms = p.as_millis_f64();
                    assert!(
                        (25.0..=400.0).contains(&ms),
                        "seed {seed}: timer period watermark {ms} ms out of bounds"
                    );
                }
            }
        }
        for rec in gt.instances() {
            let measured = ros2_tms::synthesis::execution_time(
                rec.start,
                rec.end,
                rec.pid,
                trace.sched_events(),
            );
            assert_eq!(measured, rec.issued, "seed {seed}: lossy exec-time drifted");
        }
    }
}
