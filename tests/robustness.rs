//! Failure injection and robustness: the synthesis pipeline must degrade
//! gracefully on the imperfect traces a real deployment produces —
//! truncated windows, dropped events, and lost segments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ros2_tms::analysis::waiting_times;
use ros2_tms::ros2::WorldBuilder;
use ros2_tms::synthesis::{synthesize, Dag};
use ros2_tms::trace::{Nanos, RosEvent, Trace};
use ros2_tms::workloads::{avp_localization_app, syn_app};

fn full_trace(seed: u64, secs: u64) -> Trace {
    let mut world = WorldBuilder::new(4)
        .seed(seed)
        .app(syn_app(1.0))
        .app(avp_localization_app())
        .build()
        .expect("world");
    world.trace_run(Nanos::from_secs(secs))
}

/// Removes each ROS2 event independently with probability `p`.
fn drop_events(trace: &Trace, p: f64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed);
    let kept: Vec<RosEvent> = trace
        .ros_events()
        .iter()
        .filter(|_| rng.gen_range(0.0..1.0) >= p)
        .cloned()
        .collect();
    Trace::from_events(kept, trace.sched_events().to_vec())
}

#[test]
fn synthesis_survives_random_event_loss() {
    let trace = full_trace(1, 3);
    let baseline = synthesize(&trace);
    for p in [0.01, 0.05, 0.2, 0.5] {
        let degraded = synthesize(&drop_events(&trace, p, 42));
        // No panic, and never wildly *more* structure than the complete
        // trace supports (decorations may degrade to `unknown` variants,
        // splitting a few vertices). Heavily corrupted traces may even
        // yield cycles — downstream consumers must tolerate them, which
        // `enumerate_chains` does via its on-path guard.
        assert!(
            degraded.vertices().len() <= 2 * baseline.vertices().len(),
            "p={p}: {} vs {}",
            degraded.vertices().len(),
            baseline.vertices().len()
        );
        let chains = ros2_tms::analysis::enumerate_chains(&degraded);
        assert!(chains.len() < 10_000, "p={p}: chain enumeration exploded");
    }
    // Mild loss must keep the model acyclic.
    assert!(synthesize(&drop_events(&trace, 0.005, 43)).is_acyclic());
}

#[test]
fn synthesis_survives_truncated_trace() {
    let trace = full_trace(2, 3);
    // Cut at arbitrary prefixes: instances spanning the cut are dropped,
    // nothing panics, model stays acyclic.
    let all: Vec<RosEvent> = trace.ros_events().to_vec();
    for frac in [0.1, 0.33, 0.7, 0.95] {
        let cut = (all.len() as f64 * frac) as usize;
        let truncated =
            Trace::from_events(all[..cut].to_vec(), trace.sched_events().to_vec());
        let dag = synthesize(&truncated);
        assert!(dag.is_acyclic(), "frac={frac}");
    }
}

#[test]
fn sched_trace_loss_degrades_exec_times_to_zero_not_panic() {
    // Without scheduler events, Algorithm 2 has no segments to sum other
    // than the full window (thread assumed running start-to-end).
    let trace = full_trace(3, 2);
    let no_sched = Trace::from_events(trace.ros_events().to_vec(), Vec::new());
    let dag = synthesize(&no_sched);
    // Execution times now equal response times (window lengths): still a
    // valid over-approximation, never panicking.
    for v in dag.vertices() {
        if let Some(w) = v.stats.mwcet() {
            assert!(w >= Nanos::ZERO);
        }
    }
}

#[test]
fn empty_and_tiny_traces() {
    assert!(synthesize(&Trace::new()).vertices().is_empty());
    let trace = full_trace(4, 0); // zero-length run: only t=0 activity
    let dag = synthesize(&trace);
    assert!(dag.is_acyclic());
}

#[test]
fn lost_middle_segment_still_merges() {
    // Fig. 2 deployment where a middle segment is lost in transit to the
    // trace database: the merged model is the union of what survived.
    let mut world = WorldBuilder::new(4).seed(5).app(syn_app(1.0)).build().expect("world");
    world.announce_nodes();
    world.start_runtime_tracers();
    let mut segments = Vec::new();
    for _ in 0..3 {
        world.run_for(Nanos::from_secs(2));
        segments.push(world.collect_segment());
    }
    let names = ros2_tms::synthesis::node_name_map(&segments[0]);
    let with_all: Dag = {
        let mut acc = Dag::new();
        for s in &segments {
            acc.merge(&ros2_tms::synthesis::synthesize_with_names(s, &names));
        }
        acc
    };
    let with_loss: Dag = {
        let mut acc = Dag::new();
        for s in [&segments[0], &segments[2]] {
            acc.merge(&ros2_tms::synthesis::synthesize_with_names(s, &names));
        }
        acc
    };
    assert!(with_loss.is_acyclic());
    assert!(with_loss.vertices().len() <= with_all.vertices().len());
    // Fewer samples, same or smaller structure — never phantom vertices.
    let max_loss: u64 = with_loss.vertices().iter().map(|v| v.stats.count()).sum();
    let max_all: u64 = with_all.vertices().iter().map(|v| v.stats.count()).sum();
    assert!(max_loss < max_all);
}

#[test]
fn city_preset_builds_and_synthesizes_at_scale() {
    // The `city` preset generates a 100+-node AD-style pipeline mixing
    // every scenario axis: multi-threaded executors with reentrant
    // groups, bursty publishers, deep chains, and wide fan-in. One
    // simulated second must deploy, trace, and synthesize cleanly.
    let config = ros2_tms::workloads::GeneratorConfig::city();
    let app = ros2_tms::workloads::generate_app(4242, &config);
    assert!(app.nodes.len() >= 100, "city app has only {} nodes", app.nodes.len());
    let callbacks: usize = app.nodes.iter().map(|n| n.callbacks.len()).sum();
    assert!(callbacks >= 150, "city app has only {callbacks} callbacks");
    assert!(
        app.nodes.iter().any(|n| n.workers > 1),
        "a city app should have multi-threaded executors"
    );

    let mut world = WorldBuilder::new(8).seed(4242).app(app).build().expect("city deploys");
    let trace = world.trace_run(Nanos::from_secs(1));
    let dag = synthesize(&trace);
    assert!(dag.is_acyclic());
    let modeled = dag
        .vertices()
        .iter()
        .filter(|v| !matches!(v.kind, ros2_tms::synthesis::VertexKind::AndJunction))
        .count();
    assert!(modeled >= 100, "only {modeled} callbacks made it into the city model");
    // Chain enumeration stays tractable at city scale.
    let chains = ros2_tms::analysis::enumerate_chains(&dag);
    assert!(!chains.is_empty() && chains.len() < 100_000, "{} chains", chains.len());
}

#[test]
fn waiting_times_measurable_with_wakeups_enabled() {
    let mut world = WorldBuilder::new(2)
        .seed(6)
        .app(avp_localization_app())
        .record_wakeups()
        .build()
        .expect("world");
    let trace = world.trace_run(Nanos::from_secs(3));
    let pid = world.node_pid("p2d_ndt_localizer_node").expect("localizer pid");
    let waits = waiting_times(&trace, pid);
    assert!(!waits.is_empty(), "localizer instances must have measurable waits");
    for w in &waits {
        assert!(w.wakeup <= w.start);
        // The localizer wakes when fused data lands; it should start within
        // a bounded delay on a 2-core machine with this load.
        assert!(w.waiting < Nanos::from_millis(200), "pathological wait {}", w.waiting);
    }
}

#[test]
fn perf_buffer_overflow_is_counted_not_fatal() {
    // A long run with tracers never drained: buffers fill, drops are
    // accounted, the run completes, and the partial trace still yields a
    // model.
    let mut world = WorldBuilder::new(4)
        .seed(7)
        .app(avp_localization_app())
        .app(syn_app(1.0))
        .build()
        .expect("world");
    world.announce_nodes();
    world.start_runtime_tracers();
    // The 8 MiB RT buffer at ~90 B per event fills after a couple of
    // simulated minutes of SYN + AVP activity.
    world.run_for(Nanos::from_secs(150));
    let trace = world.collect_segment();
    let dag = synthesize(&trace);
    assert!(dag.is_acyclic());
    assert!(!dag.vertices().is_empty());
}
