//! Whole-pipeline integration tests: simulated stack → eBPF traces →
//! Algorithm 1/2 → DAG, validated against the simulator's ground truth and
//! the structures of Fig. 3a / Fig. 3b.

use ros2_tms::synthesis::{merge_dags, synthesize, VertexKind};
use ros2_tms::trace::{CallbackKind, Nanos};
use ros2_tms::workloads::{case_study_world, run_and_synthesize, syn_app};
use ros2_tms::workloads::{avp_localization_app, SYN_EDGE_COUNT, SYN_VERTEX_COUNT};
use ros2_tms::ros2::WorldBuilder;

#[test]
fn algorithm2_recovers_exact_execution_times_under_contention() {
    // Run SYN + AVP on a deliberately small machine (2 cores) so callbacks
    // get preempted and migrate, then check that Algorithm 2's measurement
    // equals the CPU time the simulator issued — for EVERY instance.
    let mut world = WorldBuilder::new(2)
        .seed(42)
        .app(avp_localization_app())
        .app(syn_app(1.0))
        .build()
        .expect("world");
    let trace = world.trace_run(Nanos::from_secs(3));
    let gt = world.ground_truth();
    assert!(gt.instances().len() > 100, "enough instances to be meaningful");

    let mut preempted = 0usize;
    for rec in gt.instances() {
        let measured =
            ros2_tms::synthesis::execution_time(rec.start, rec.end, rec.pid, trace.sched_events());
        assert_eq!(
            measured, rec.issued,
            "Alg.2 must recover the issued CPU time exactly (cb {:?})",
            gt.info(rec.callback)
        );
        if rec.end - rec.start > rec.issued {
            preempted += 1;
        }
    }
    assert!(
        preempted > 0,
        "the scenario must actually exhibit preemption/queueing, else the test is vacuous"
    );
}

#[test]
fn syn_model_matches_fig3a_structure() {
    let mut world = WorldBuilder::new(4)
        .seed(7)
        .app(syn_app(1.0))
        .build()
        .expect("world");
    let dag = run_and_synthesize_local(&mut world);

    assert!(dag.is_acyclic());
    assert_eq!(dag.vertices().len(), SYN_VERTEX_COUNT, "\n{}", dag.to_dot());
    assert_eq!(dag.edges().len(), SYN_EDGE_COUNT, "\n{}", dag.to_dot());

    // (iv) Two vertices for the /sv3 service — one per caller — and no
    // cross-caller chain.
    let sv3: Vec<_> = dag
        .vertex_ids()
        .filter(|&v| {
            dag.vertex(v).node == "syn_mixed"
                && dag.vertex(v).kind == VertexKind::Callback(CallbackKind::Service)
        })
        .collect();
    assert_eq!(sv3.len(), 2, "service invoked by two callers must split");
    for &v in &sv3 {
        assert_eq!(dag.predecessors(v).len(), 1, "each SV3 vertex has exactly one caller");
        assert_eq!(dag.successors(v).len(), 1, "each SV3 vertex responds to exactly one client");
    }
    // The two SV3 vertices connect disjoint caller/client pairs.
    let pair0 = (dag.predecessors(sv3[0])[0], dag.successors(sv3[0])[0]);
    let pair1 = (dag.predecessors(sv3[1])[0], dag.successors(sv3[1])[0]);
    assert_ne!(pair0.0, pair1.0);
    assert_ne!(pair0.1, pair1.1);

    // (iii) + OR: /clp3 subscribed by SC4 and SC5, each fed by T2 and T3.
    let clp3_subs: Vec<_> = dag
        .vertex_ids()
        .filter(|&v| dag.vertex(v).in_topic.as_deref() == Some("/clp3"))
        .collect();
    assert_eq!(clp3_subs.len(), 2);
    for &v in &clp3_subs {
        assert!(dag.vertex(v).or_junction, "two publishers on /clp3 -> OR junction");
        assert_eq!(dag.predecessors(v).len(), 2);
    }

    // (v) Synchronization: one `&` junction with two members, feeding the
    // /f3 subscriber.
    let junctions: Vec<_> = dag
        .vertex_ids()
        .filter(|&v| dag.vertex(v).kind == VertexKind::AndJunction)
        .collect();
    assert_eq!(junctions.len(), 1);
    let junction = junctions[0];
    assert_eq!(dag.vertex(junction).node, "syn_fusion");
    assert_eq!(dag.predecessors(junction).len(), 2);
    assert_eq!(dag.vertex(junction).stats.mwcet(), Some(Nanos::ZERO));
    let f3_sub = dag
        .vertex_ids()
        .find(|&v| dag.vertex(v).in_topic.as_deref() == Some("/f3"))
        .expect("/f3 subscriber");
    assert_eq!(dag.predecessors(f3_sub), vec![junction]);
}

fn run_and_synthesize_local(world: &mut ros2_tms::ros2::Ros2World) -> ros2_tms::synthesis::Dag {
    let trace = world.trace_run(Nanos::from_secs(5));
    synthesize(&trace)
}

#[test]
fn avp_model_matches_fig3b_structure() {
    let mut world = WorldBuilder::new(4)
        .seed(11)
        .app(avp_localization_app())
        .build()
        .expect("world");
    let dag = run_and_synthesize_local(&mut world);
    assert!(dag.is_acyclic());

    // The localization chain: cb1/cb2 -> (cb3, cb4) -> & -> cb5 -> cb6.
    let by_node = |node: &str| {
        dag.vertex_ids()
            .find(|&v| {
                dag.vertex(v).node == node && dag.vertex(v).kind != VertexKind::AndJunction
            })
            .unwrap_or_else(|| panic!("vertex for {node}"))
    };
    let cb1 = by_node("filter_transform_vlp16_rear");
    let cb2 = by_node("filter_transform_vlp16_front");
    let cb5 = by_node("voxel_grid_cloud_node");
    let cb6 = by_node("p2d_ndt_localizer_node");
    let junction = dag
        .vertex_ids()
        .find(|&v| dag.vertex(v).kind == VertexKind::AndJunction)
        .expect("fusion junction");
    assert_eq!(dag.vertex(junction).node, "point_cloud_fusion");

    // cb3 and cb4 are the two sync members in the fusion node.
    let members: Vec<_> = dag
        .vertex_ids()
        .filter(|&v| dag.vertex(v).is_sync_member)
        .collect();
    assert_eq!(members.len(), 2);
    for &m in &members {
        assert_eq!(dag.vertex(m).node, "point_cloud_fusion");
        assert!(dag.successors(m).contains(&junction));
    }
    // Filters feed the sync members.
    let cb1_succ = dag.successors(cb1);
    assert_eq!(cb1_succ.len(), 1);
    assert!(members.contains(&cb1_succ[0]));
    let cb2_succ = dag.successors(cb2);
    assert_eq!(cb2_succ.len(), 1);
    assert!(members.contains(&cb2_succ[0]));
    // Junction -> cb5 -> cb6.
    assert_eq!(dag.successors(junction), vec![cb5]);
    assert_eq!(dag.successors(cb5), vec![cb6]);
    assert!(dag.vertex(cb6).out_topics.contains(&"/localization/ndt_pose".into()));
}

#[test]
fn avp_measured_times_match_table2_calibration() {
    // One longer run: measured mBCET/mWCET must sit inside the calibrated
    // support and mACET near the calibrated mean.
    let mut world = case_study_world(3, 1.0);
    let dag = run_and_synthesize(&mut world, Nanos::from_secs(40));
    for (cb, node, bcet, acet, wcet) in ros2_tms::workloads::AVP_CALLBACKS {
        let v = dag
            .vertex_ids()
            .map(|id| dag.vertex(id))
            .filter(|v| v.node == node && v.kind != VertexKind::AndJunction)
            .max_by_key(|v| {
                // cb3/cb4 share a node: pick by matching calibrated mean.
                let target = Nanos::from_millis_f64(acet).as_nanos() as i128;
                -((v.stats.macet().map_or(i128::MAX, |m| m.as_nanos() as i128) - target).abs())
            })
            .unwrap_or_else(|| panic!("vertex for {cb}"));
        let mb = v.stats.mbcet().expect("samples").as_millis_f64();
        let mw = v.stats.mwcet().expect("samples").as_millis_f64();
        let ma = v.stats.macet().expect("samples").as_millis_f64();
        assert!(mb >= bcet - 1e-6, "{cb}: mBCET {mb} below calibrated BCET {bcet}");
        assert!(mw <= wcet + 1e-6, "{cb}: mWCET {mw} above calibrated WCET {wcet}");
        assert!(
            (ma - acet).abs() / acet < 0.25,
            "{cb}: mACET {ma} too far from calibrated ACET {acet}"
        );
    }
}

#[test]
fn merged_model_over_runs_is_stable_and_monotone() {
    // Merge DAGs from several seeds: structure fixed, mWCET non-decreasing.
    let mut dags = Vec::new();
    for seed in 0..4 {
        let mut world = WorldBuilder::new(4)
            .seed(seed)
            .app(avp_localization_app())
            .build()
            .expect("world");
        let trace = world.trace_run(Nanos::from_secs(5));
        dags.push(synthesize(&trace));
    }
    let first_structure =
        (dags[0].vertices().len(), dags[0].edges().len());
    let mut acc = ros2_tms::synthesis::Dag::new();
    let mut prev_wcet = Nanos::ZERO;
    for d in &dags {
        acc.merge(d);
        assert_eq!(
            (acc.vertices().len(), acc.edges().len()),
            first_structure,
            "same app across runs must merge without structural growth"
        );
        let cb6 = acc
            .vertices()
            .iter()
            .find(|v| v.node == "p2d_ndt_localizer_node")
            .expect("cb6");
        let w = cb6.stats.mwcet().expect("samples");
        assert!(w >= prev_wcet, "merged mWCET must be non-decreasing");
        prev_wcet = w;
    }
}

#[test]
fn timer_periods_recovered_from_trace() {
    let mut world = WorldBuilder::new(4)
        .seed(9)
        .app(syn_app(1.0))
        .build()
        .expect("world");
    let trace = world.trace_run(Nanos::from_secs(5));
    let dag = synthesize(&trace);
    // T1 100 ms, T2 80 ms, T3 120 ms: recovered from start-time gaps.
    let mut periods: Vec<f64> = dag
        .vertices()
        .iter()
        .filter(|v| v.kind == VertexKind::Callback(CallbackKind::Timer))
        .filter_map(|v| v.period.macet())
        .map(|p| p.as_millis_f64())
        .collect();
    periods.sort_by(f64::total_cmp);
    assert_eq!(periods.len(), 3);
    assert!((periods[0] - 80.0).abs() < 1.0, "{periods:?}");
    assert!((periods[1] - 100.0).abs() < 1.0, "{periods:?}");
    assert!((periods[2] - 120.0).abs() < 1.0, "{periods:?}");
}

#[test]
fn merge_dags_helper_pools_runs() {
    let dags = ros2_tms::workloads::synthesize_runs(2, Nanos::from_secs(1), 100);
    let merged = merge_dags(dags);
    assert!(merged.is_acyclic());
    assert!(!merged.vertices().is_empty());
}
