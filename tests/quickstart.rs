//! Guards the README quickstart: this test exercises exactly the code path
//! documented in README.md and `examples/quickstart.rs` (describe an
//! application → trace a run → synthesize the model → export DOT), with
//! assertions on each step's output, so the documented entry point cannot
//! silently rot.

use ros2_tms::ros2::{AppBuilder, WorkModel, WorldBuilder};
use ros2_tms::synthesis::synthesize;
use ros2_tms::trace::Nanos;

#[test]
fn quickstart_path_works_as_documented() {
    // 1. Describe the application: a 10 Hz camera driver and a detector.
    let mut app = AppBuilder::new("quickstart");
    let camera = app.node("camera_driver");
    app.timer(camera, "capture", Nanos::from_millis(100), WorkModel::constant_millis(2.0))
        .publishes("/image_raw");
    let detector = app.node("object_detector");
    app.subscriber(detector, "detect", "/image_raw", WorkModel::bounded_millis(8.0, 12.0, 20.0))
        .publishes("/detections");
    let spec = app.build().expect("quickstart app must validate");

    // 2. Run it on a traced 4-core machine for 5 simulated seconds.
    let mut world =
        WorldBuilder::new(4).seed(42).app(spec).build().expect("quickstart world must build");
    let trace = world.trace_run(Nanos::from_secs(5));
    assert!(!trace.ros_events().is_empty(), "tracers must capture middleware events");
    assert!(!trace.sched_events().is_empty(), "kernel tracer must capture sched events");

    // 3. Synthesize the timing model: one vertex per callback, with the
    //    timer-to-subscriber edge over /image_raw.
    let dag = synthesize(&trace);
    let ids: Vec<_> = dag.vertex_ids().collect();
    assert_eq!(ids.len(), 2, "quickstart model has two callbacks");
    let nodes: Vec<&str> = ids.iter().map(|&id| dag.vertex(id).node.as_str()).collect();
    assert!(nodes.contains(&"camera_driver"), "missing camera_driver vertex in {nodes:?}");
    assert!(nodes.contains(&"object_detector"), "missing object_detector vertex in {nodes:?}");
    let edges: usize = ids.iter().map(|&id| dag.successors(id).len()).sum();
    assert_eq!(edges, 1, "exactly one edge: /image_raw from timer to subscriber");

    // The measured ~100 ms timer period must be recovered from the trace.
    let timer = ids
        .iter()
        .map(|&id| dag.vertex(id))
        .find(|v| v.node == "camera_driver")
        .expect("camera_driver vertex");
    let period = timer.period.macet().expect("timer period measured").as_millis_f64();
    assert!((90.0..110.0).contains(&period), "expected ~100 ms period, measured {period:.2} ms");

    // 4. Export for downstream tools.
    let dot = dag.to_dot();
    assert!(dot.starts_with("digraph"), "DOT export must be a digraph");
    assert!(dot.contains("camera_driver"), "DOT export must name the nodes");
}
