//! Scenario tests beyond the paper's case study: overload behaviour,
//! chained RPCs, per-node executor ordering, model utilities, and a wide
//! sweep of generated applications under the scenario axes (multi-threaded
//! executors, lossy QoS, bursty publishers) scored against the simulator's
//! ground truth.

use ros2_tms::analysis::{end_to_end_latencies, enumerate_chains, node_loads};
use ros2_tms::ros2::{AppBuilder, CallbackSpec, QosSpec, WorkModel, WorldBuilder};
use ros2_tms::synthesis::{synthesize, VertexKind};
use ros2_tms::trace::{CallbackKind, Nanos, RosPayload};
use ros2_tms::workloads::{generate_app, GeneratorConfig};
use std::collections::HashSet;

#[test]
fn overloaded_timer_keeps_executor_serial_and_period_estimate_degrades() {
    // A 10 ms timer whose callback takes ~15 ms on a single core: the
    // executor falls behind, instances run back-to-back, and the estimated
    // period reflects the actual (degraded) invocation rate, not the
    // configured one.
    let mut app = AppBuilder::new("overload");
    let n = app.node("hog");
    app.timer(n, "T", Nanos::from_millis(10), WorkModel::constant_millis(15.0));
    let mut world = WorldBuilder::new(1).seed(1).app(app.build().expect("valid")).build().expect("world");
    let trace = world.trace_run(Nanos::from_secs(2));

    // Serial execution even under overload.
    let pid = world.node_pid("hog").expect("pid");
    let mut depth = 0;
    for ev in trace.ros_events_for(pid) {
        match ev.payload {
            RosPayload::CallbackStart { .. } => depth += 1,
            RosPayload::CallbackEnd { .. } => depth -= 1,
            _ => {}
        }
        assert!(depth <= 1);
    }

    let dag = synthesize(&trace);
    let timer = dag
        .vertices()
        .iter()
        .find(|v| v.kind == VertexKind::Callback(CallbackKind::Timer))
        .expect("timer vertex");
    let period = timer.period.macet().expect("period estimate").as_millis_f64();
    assert!(
        (period - 15.0).abs() < 1.0,
        "estimated period {period} must track the actual ~15 ms rate"
    );
    // The node saturates its core.
    let loads = node_loads(&dag, Nanos::from_secs(2));
    assert!(loads[0].load > 0.9, "saturated node load {}", loads[0].load);
}

#[test]
fn chained_rpcs_form_one_chain_in_the_model() {
    // timer -> service A; A's response handler calls service B; B's
    // response handler publishes the result. Three hops over two RPCs.
    let mut app = AppBuilder::new("rpc_chain");
    let caller = app.node("caller");
    app.timer(caller, "T", Nanos::from_millis(50), WorkModel::constant_millis(0.5))
        .calls("CLA");
    app.client(caller, "CLA", "/a", WorkModel::constant_millis(0.5)).calls("CLB");
    app.client(caller, "CLB", "/b", WorkModel::constant_millis(0.5)).publishes("/done");
    let sa = app.node("server_a");
    app.service(sa, "SA", "/a", WorkModel::constant_millis(1.0));
    let sb = app.node("server_b");
    app.service(sb, "SB", "/b", WorkModel::constant_millis(1.0));
    let sink = app.node("sink");
    app.subscriber(sink, "S", "/done", WorkModel::constant_millis(0.2));

    let mut world =
        WorldBuilder::new(2).seed(2).app(app.build().expect("valid")).build().expect("world");
    let trace = world.trace_run(Nanos::from_secs(2));
    let dag = synthesize(&trace);
    assert!(dag.is_acyclic());

    let chains = enumerate_chains(&dag);
    // Single chain: T -> SA -> CLA -> SB -> CLB -> S.
    assert_eq!(chains.len(), 1, "{}", dag.to_dot());
    assert_eq!(chains[0].vertices.len(), 6);
    let desc = chains[0].describe(&dag);
    assert!(desc.starts_with("caller(timer)"), "{desc}");
    assert!(desc.ends_with("sink(subscriber)"), "{desc}");

    // End-to-end: request writes flow into /done publications.
    let lats = end_to_end_latencies(&trace, "/aRequest", "/done");
    assert!(!lats.is_empty());
}

#[test]
fn two_sync_groups_in_different_nodes() {
    // Two independent fusion stages chained: (a,b) -> f1 ; (f1,c) -> f2.
    let mut app = AppBuilder::new("two_sync");
    let src = app.node("sources");
    app.timer(src, "TA", Nanos::from_millis(100), WorkModel::constant_millis(0.2)).publishes("/a");
    app.timer(src, "TB", Nanos::from_millis(100), WorkModel::constant_millis(0.2)).publishes("/b");
    app.timer(src, "TC", Nanos::from_millis(100), WorkModel::constant_millis(0.2)).publishes("/c");
    let f1 = app.node("fusion1");
    app.subscriber(f1, "F1A", "/a", WorkModel::constant_millis(0.3));
    app.subscriber(f1, "F1B", "/b", WorkModel::constant_millis(0.3));
    app.sync_group(f1, "MS1", ["F1A", "F1B"], ["/f1"]);
    let f2 = app.node("fusion2");
    app.subscriber(f2, "F2A", "/f1", WorkModel::constant_millis(0.3));
    app.subscriber(f2, "F2C", "/c", WorkModel::constant_millis(0.3));
    app.sync_group(f2, "MS2", ["F2A", "F2C"], ["/f2"]);
    let sink = app.node("sink");
    app.subscriber(sink, "S", "/f2", WorkModel::constant_millis(0.1));

    let mut world =
        WorldBuilder::new(2).seed(3).app(app.build().expect("valid")).build().expect("world");
    let trace = world.trace_run(Nanos::from_secs(2));
    let dag = synthesize(&trace);
    assert!(dag.is_acyclic());

    let junctions: Vec<_> = dag
        .vertex_ids()
        .filter(|&v| dag.vertex(v).kind == VertexKind::AndJunction)
        .collect();
    assert_eq!(junctions.len(), 2, "one junction per fusion node\n{}", dag.to_dot());
    // The second stage consumes the first stage's junction output.
    let f2a = dag
        .vertex_ids()
        .find(|&v| dag.vertex(v).in_topic.as_deref() == Some("/f1"))
        .expect("/f1 subscriber");
    let preds = dag.predecessors(f2a);
    assert_eq!(preds.len(), 1);
    assert_eq!(dag.vertex(preds[0]).kind, VertexKind::AndJunction);
}

#[test]
fn executor_prefers_timers_then_registration_order() {
    // A node with a timer and a subscriber whose data arrives while the
    // timer is due: the timer runs first (rclcpp wait-set semantics
    // approximation), then the subscriber.
    let mut app = AppBuilder::new("ordering");
    let ext = app.node("ext");
    app.timer(ext, "SRC", Nanos::from_millis(40), WorkModel::constant_millis(0.1))
        .publishes("/data");
    let n = app.node("busy");
    app.timer(n, "TICK", Nanos::from_millis(40), WorkModel::constant_millis(5.0));
    app.subscriber(n, "SUB", "/data", WorkModel::constant_millis(1.0));

    let mut world =
        WorldBuilder::new(2).seed(4).app(app.build().expect("valid")).build().expect("world");
    let trace = world.trace_run(Nanos::from_secs(1));
    let pid = world.node_pid("busy").expect("pid");
    // At every release epoch both are ready (the /data sample arrives while
    // TICK computes); the next instance started after each TICK end must be
    // the pending SUB, never a second TICK back-to-back while SUB starves.
    let events = trace.ros_events_for(pid);
    let starts: Vec<CallbackKind> = events
        .iter()
        .filter_map(|e| match &e.payload {
            RosPayload::CallbackStart { kind } => Some(*kind),
            _ => None,
        })
        .collect();
    let timers = starts.iter().filter(|k| **k == CallbackKind::Timer).count();
    let subs = starts.iter().filter(|k| **k == CallbackKind::Subscriber).count();
    assert!(timers >= 24, "timer fired {timers} times");
    assert!(subs >= 24, "subscriber never starved: {subs}");
}

/// The declared kind of an application callback.
fn spec_kind(cb: &CallbackSpec) -> CallbackKind {
    match cb {
        CallbackSpec::Timer { .. } => CallbackKind::Timer,
        CallbackSpec::Subscriber { .. } => CallbackKind::Subscriber,
        CallbackSpec::Service { .. } => CallbackKind::Service,
        CallbackSpec::Client { .. } => CallbackKind::Client,
    }
}

/// A wide sweep of generated applications under the three scenario axes —
/// multi-threaded executors with callback groups, lossy QoS, and bursty
/// publishers — each scored against the simulator's ground truth:
///
/// - **callback coverage**: every callback that completed at least three
///   instances appears in the model as a vertex of the right kind;
/// - **no phantom vertices or edges**: every vertex maps to a declared
///   callback, every edge's topic to a declared topic or service channel;
/// - **junction consistency**: AND junctions appear exactly for the nodes
///   that declare sync groups (and whose members all fired).
///
/// Debug builds sweep a subset to keep `cargo test` quick; release builds
/// and CI cover the full hundred applications.
#[test]
fn generated_apps_stay_faithful_across_scenario_axes() {
    let total = if cfg!(debug_assertions) { 12u64 } else { 100 };
    let lossy = QosSpec { drop_prob: 0.15, reorder_bound: 2, jitter: Nanos::from_micros(200) };
    for seed in 0..total {
        let scenario = seed % 3;
        let config = match scenario {
            0 => GeneratorConfig::multi_threaded(),
            1 => GeneratorConfig::default(), // + lossy QoS below
            _ => GeneratorConfig::bursty(),
        };
        let app = generate_app(seed.wrapping_add(700), &config);
        let mut b = WorldBuilder::new(4).seed(seed).app(app.clone());
        if scenario == 1 {
            b = b.qos(lossy);
        }
        let mut world = b.build().expect("generated app deploys");
        let trace = world.trace_run(Nanos::from_secs(1));
        let gt = world.ground_truth();
        let dag = synthesize(&trace);
        assert!(dag.is_acyclic(), "seed {seed} scenario {scenario}: cyclic model");

        // Callback coverage: ground truth knows every completed instance;
        // whatever genuinely ran (three-plus instances, so at least two
        // fully inside the window) must be in the model.
        let modeled: HashSet<(String, CallbackKind)> = dag
            .vertices()
            .iter()
            .filter_map(|v| match v.kind {
                VertexKind::Callback(k) => Some((v.node.clone(), k)),
                VertexKind::AndJunction => None,
            })
            .collect();
        for node in &app.nodes {
            for cb in &node.callbacks {
                let id = gt.id_of(cb.name()).expect("registered callback");
                if gt.instances_of(id).count() >= 3 {
                    assert!(
                        modeled.contains(&(node.name.clone(), spec_kind(cb))),
                        "seed {seed} scenario {scenario}: callback {} ({} instances) \
                         missing from the model",
                        cb.name(),
                        gt.instances_of(id).count()
                    );
                }
            }
        }

        // No phantom vertices: every modeled (node, kind) is declared.
        let declared: HashSet<(String, CallbackKind)> = app
            .nodes
            .iter()
            .flat_map(|n| n.callbacks.iter().map(|cb| (n.name.clone(), spec_kind(cb))))
            .collect();
        for key in &modeled {
            assert!(
                declared.contains(key),
                "seed {seed} scenario {scenario}: phantom vertex {key:?}"
            );
        }

        // No phantom edges: every edge topic (undecorated) is a declared
        // plain topic or a service request/response channel.
        let mut topics: HashSet<String> = HashSet::new();
        for node in &app.nodes {
            for cb in &node.callbacks {
                for out in cb.outputs() {
                    if let ros2_tms::ros2::OutputAction::Publish(t) = out {
                        topics.insert(t.clone());
                    }
                }
                match cb {
                    CallbackSpec::Subscriber { topic, .. } => {
                        topics.insert(topic.clone());
                    }
                    CallbackSpec::Service { service, .. }
                    | CallbackSpec::Client { service, .. } => {
                        topics.insert(format!("{service}Request"));
                        topics.insert(format!("{service}Reply"));
                    }
                    CallbackSpec::Timer { .. } => {}
                }
            }
            for group in &node.sync_groups {
                topics.extend(group.outputs.iter().cloned());
            }
        }
        let sync_nodes: HashSet<&str> = app
            .nodes
            .iter()
            .filter(|n| !n.sync_groups.is_empty())
            .map(|n| n.name.as_str())
            .collect();
        for e in dag.edges() {
            let base = e.topic.split('#').next().unwrap_or(&e.topic);
            // `&<node>` is the pseudo-topic of a node's AND junction.
            let ok = match base.strip_prefix('&') {
                Some(node) => sync_nodes.contains(node),
                None => topics.contains(base),
            };
            assert!(ok, "seed {seed} scenario {scenario}: phantom edge topic {base:?}");
        }

        // Junction consistency: AND junctions exactly where sync groups
        // are declared and every member subscriber fired.
        let junction_nodes: HashSet<&str> = dag
            .vertices()
            .iter()
            .filter(|v| v.kind == VertexKind::AndJunction)
            .map(|v| v.node.as_str())
            .collect();
        for node in &app.nodes {
            if node.sync_groups.is_empty() {
                assert!(
                    !junction_nodes.contains(node.name.as_str()),
                    "seed {seed} scenario {scenario}: junction on sync-free node {}",
                    node.name
                );
            } else {
                let all_members_fired = node.sync_groups.iter().all(|g| {
                    g.members.iter().all(|m| {
                        gt.id_of(m).is_some_and(|id| gt.instances_of(id).count() >= 2)
                    })
                });
                if all_members_fired {
                    assert!(
                        junction_nodes.contains(node.name.as_str()),
                        "seed {seed} scenario {scenario}: sync node {} lost its junction",
                        node.name
                    );
                }
            }
        }
    }
}

#[test]
fn model_json_round_trip_preserves_everything() {
    let mut world = WorldBuilder::new(4)
        .seed(5)
        .app(ros2_tms::workloads::syn_app(1.0))
        .build()
        .expect("world");
    let trace = world.trace_run(Nanos::from_secs(3));
    let dag = synthesize(&trace);
    let json = serde_json::to_string(&dag).expect("serialize");
    let back: ros2_tms::synthesis::Dag = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(dag, back);
    // The round-tripped model supports the same analyses.
    assert_eq!(enumerate_chains(&dag).len(), enumerate_chains(&back).len());
}
