//! Scenario tests beyond the paper's case study: overload behaviour,
//! chained RPCs, per-node executor ordering, and model utilities.

use ros2_tms::analysis::{end_to_end_latencies, enumerate_chains, node_loads};
use ros2_tms::ros2::{AppBuilder, WorkModel, WorldBuilder};
use ros2_tms::synthesis::{synthesize, VertexKind};
use ros2_tms::trace::{CallbackKind, Nanos, RosPayload};

#[test]
fn overloaded_timer_keeps_executor_serial_and_period_estimate_degrades() {
    // A 10 ms timer whose callback takes ~15 ms on a single core: the
    // executor falls behind, instances run back-to-back, and the estimated
    // period reflects the actual (degraded) invocation rate, not the
    // configured one.
    let mut app = AppBuilder::new("overload");
    let n = app.node("hog");
    app.timer(n, "T", Nanos::from_millis(10), WorkModel::constant_millis(15.0));
    let mut world = WorldBuilder::new(1).seed(1).app(app.build().expect("valid")).build().expect("world");
    let trace = world.trace_run(Nanos::from_secs(2));

    // Serial execution even under overload.
    let pid = world.node_pid("hog").expect("pid");
    let mut depth = 0;
    for ev in trace.ros_events_for(pid) {
        match ev.payload {
            RosPayload::CallbackStart { .. } => depth += 1,
            RosPayload::CallbackEnd { .. } => depth -= 1,
            _ => {}
        }
        assert!(depth <= 1);
    }

    let dag = synthesize(&trace);
    let timer = dag
        .vertices()
        .iter()
        .find(|v| v.kind == VertexKind::Callback(CallbackKind::Timer))
        .expect("timer vertex");
    let period = timer.period.macet().expect("period estimate").as_millis_f64();
    assert!(
        (period - 15.0).abs() < 1.0,
        "estimated period {period} must track the actual ~15 ms rate"
    );
    // The node saturates its core.
    let loads = node_loads(&dag, Nanos::from_secs(2));
    assert!(loads[0].load > 0.9, "saturated node load {}", loads[0].load);
}

#[test]
fn chained_rpcs_form_one_chain_in_the_model() {
    // timer -> service A; A's response handler calls service B; B's
    // response handler publishes the result. Three hops over two RPCs.
    let mut app = AppBuilder::new("rpc_chain");
    let caller = app.node("caller");
    app.timer(caller, "T", Nanos::from_millis(50), WorkModel::constant_millis(0.5))
        .calls("CLA");
    app.client(caller, "CLA", "/a", WorkModel::constant_millis(0.5)).calls("CLB");
    app.client(caller, "CLB", "/b", WorkModel::constant_millis(0.5)).publishes("/done");
    let sa = app.node("server_a");
    app.service(sa, "SA", "/a", WorkModel::constant_millis(1.0));
    let sb = app.node("server_b");
    app.service(sb, "SB", "/b", WorkModel::constant_millis(1.0));
    let sink = app.node("sink");
    app.subscriber(sink, "S", "/done", WorkModel::constant_millis(0.2));

    let mut world =
        WorldBuilder::new(2).seed(2).app(app.build().expect("valid")).build().expect("world");
    let trace = world.trace_run(Nanos::from_secs(2));
    let dag = synthesize(&trace);
    assert!(dag.is_acyclic());

    let chains = enumerate_chains(&dag);
    // Single chain: T -> SA -> CLA -> SB -> CLB -> S.
    assert_eq!(chains.len(), 1, "{}", dag.to_dot());
    assert_eq!(chains[0].vertices.len(), 6);
    let desc = chains[0].describe(&dag);
    assert!(desc.starts_with("caller(timer)"), "{desc}");
    assert!(desc.ends_with("sink(subscriber)"), "{desc}");

    // End-to-end: request writes flow into /done publications.
    let lats = end_to_end_latencies(&trace, "/aRequest", "/done");
    assert!(!lats.is_empty());
}

#[test]
fn two_sync_groups_in_different_nodes() {
    // Two independent fusion stages chained: (a,b) -> f1 ; (f1,c) -> f2.
    let mut app = AppBuilder::new("two_sync");
    let src = app.node("sources");
    app.timer(src, "TA", Nanos::from_millis(100), WorkModel::constant_millis(0.2)).publishes("/a");
    app.timer(src, "TB", Nanos::from_millis(100), WorkModel::constant_millis(0.2)).publishes("/b");
    app.timer(src, "TC", Nanos::from_millis(100), WorkModel::constant_millis(0.2)).publishes("/c");
    let f1 = app.node("fusion1");
    app.subscriber(f1, "F1A", "/a", WorkModel::constant_millis(0.3));
    app.subscriber(f1, "F1B", "/b", WorkModel::constant_millis(0.3));
    app.sync_group(f1, "MS1", ["F1A", "F1B"], ["/f1"]);
    let f2 = app.node("fusion2");
    app.subscriber(f2, "F2A", "/f1", WorkModel::constant_millis(0.3));
    app.subscriber(f2, "F2C", "/c", WorkModel::constant_millis(0.3));
    app.sync_group(f2, "MS2", ["F2A", "F2C"], ["/f2"]);
    let sink = app.node("sink");
    app.subscriber(sink, "S", "/f2", WorkModel::constant_millis(0.1));

    let mut world =
        WorldBuilder::new(2).seed(3).app(app.build().expect("valid")).build().expect("world");
    let trace = world.trace_run(Nanos::from_secs(2));
    let dag = synthesize(&trace);
    assert!(dag.is_acyclic());

    let junctions: Vec<_> = dag
        .vertex_ids()
        .filter(|&v| dag.vertex(v).kind == VertexKind::AndJunction)
        .collect();
    assert_eq!(junctions.len(), 2, "one junction per fusion node\n{}", dag.to_dot());
    // The second stage consumes the first stage's junction output.
    let f2a = dag
        .vertex_ids()
        .find(|&v| dag.vertex(v).in_topic.as_deref() == Some("/f1"))
        .expect("/f1 subscriber");
    let preds = dag.predecessors(f2a);
    assert_eq!(preds.len(), 1);
    assert_eq!(dag.vertex(preds[0]).kind, VertexKind::AndJunction);
}

#[test]
fn executor_prefers_timers_then_registration_order() {
    // A node with a timer and a subscriber whose data arrives while the
    // timer is due: the timer runs first (rclcpp wait-set semantics
    // approximation), then the subscriber.
    let mut app = AppBuilder::new("ordering");
    let ext = app.node("ext");
    app.timer(ext, "SRC", Nanos::from_millis(40), WorkModel::constant_millis(0.1))
        .publishes("/data");
    let n = app.node("busy");
    app.timer(n, "TICK", Nanos::from_millis(40), WorkModel::constant_millis(5.0));
    app.subscriber(n, "SUB", "/data", WorkModel::constant_millis(1.0));

    let mut world =
        WorldBuilder::new(2).seed(4).app(app.build().expect("valid")).build().expect("world");
    let trace = world.trace_run(Nanos::from_secs(1));
    let pid = world.node_pid("busy").expect("pid");
    // At every release epoch both are ready (the /data sample arrives while
    // TICK computes); the next instance started after each TICK end must be
    // the pending SUB, never a second TICK back-to-back while SUB starves.
    let events = trace.ros_events_for(pid);
    let starts: Vec<CallbackKind> = events
        .iter()
        .filter_map(|e| match &e.payload {
            RosPayload::CallbackStart { kind } => Some(*kind),
            _ => None,
        })
        .collect();
    let timers = starts.iter().filter(|k| **k == CallbackKind::Timer).count();
    let subs = starts.iter().filter(|k| **k == CallbackKind::Subscriber).count();
    assert!(timers >= 24, "timer fired {timers} times");
    assert!(subs >= 24, "subscriber never starved: {subs}");
}

#[test]
fn model_json_round_trip_preserves_everything() {
    let mut world = WorldBuilder::new(4)
        .seed(5)
        .app(ros2_tms::workloads::syn_app(1.0))
        .build()
        .expect("world");
    let trace = world.trace_run(Nanos::from_secs(3));
    let dag = synthesize(&trace);
    let json = serde_json::to_string(&dag).expect("serialize");
    let back: ros2_tms::synthesis::Dag = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(dag, back);
    // The round-tripped model supports the same analyses.
    assert_eq!(enumerate_chains(&dag).len(), enumerate_chains(&back).len());
}
