//! Multi-mode model synthesis (Fig. 2, option (iv)): merge traces per
//! operating scenario — here "parking" (heavy localizer load, as in the
//! AVP demo) vs "cruise" (lighter load) — and obtain one DAG per mode.
//!
//! Run with: `cargo run --example multi_mode`

use ros2_tms::ros2::{AppBuilder, WorkModel, WorldBuilder};
use ros2_tms::synthesis::{synthesize, MultiModeDag};
use ros2_tms::trace::Nanos;

fn pipeline(localizer_work: WorkModel) -> ros2_tms::ros2::AppSpec {
    let mut app = AppBuilder::new("mode_demo");
    let lidar = app.node("lidar_driver");
    app.timer(lidar, "scan", Nanos::from_millis(100), WorkModel::constant_millis(0.1))
        .publishes("/points");
    let loc = app.node("localizer");
    app.subscriber(loc, "localize", "/points", localizer_work).publishes("/pose");
    app.build().expect("valid app")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mm = MultiModeDag::new();

    // Two runs per mode, with mode-dependent localizer load.
    for (mode, work) in [
        ("parking", WorkModel::bounded_millis(10.0, 30.0, 60.0)),
        ("cruise", WorkModel::bounded_millis(3.0, 6.0, 12.0)),
    ] {
        for seed in 0..2 {
            let mut world = WorldBuilder::new(4).seed(seed).app(pipeline(work)).build()?;
            let trace = world.trace_run(Nanos::from_secs(10));
            mm.merge_into_mode(mode, &synthesize(&trace));
        }
    }

    for mode in mm.modes().map(String::from).collect::<Vec<_>>() {
        let dag = mm.mode(&mode).expect("mode exists");
        let localizer = dag
            .vertices()
            .iter()
            .find(|v| v.node == "localizer")
            .expect("localizer vertex");
        println!("mode {mode:<8}: localizer {}", localizer.stats);
    }

    let collapsed = mm.collapsed();
    let pooled = collapsed
        .vertices()
        .iter()
        .find(|v| v.node == "localizer")
        .expect("localizer vertex");
    println!("collapsed   : localizer {}", pooled.stats);
    println!();
    println!(
        "A mode-agnostic model would budget the cruise mode against the \
         parking-mode worst case — the over-approximation multi-mode models avoid."
    );
    Ok(())
}
