//! Streaming synthesis: trace a long run as bounded segments and keep a
//! live timing model the whole way — without ever materializing the full
//! trace.
//!
//! Run with: `cargo run --example streaming_model`

use ros2_tms::ros2::{AppBuilder, WorkModel, WorldBuilder};
use ros2_tms::synthesis::SynthesisSession;
use ros2_tms::trace::Nanos;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 20 Hz sensor pipeline we want to model over a long horizon.
    let mut app = AppBuilder::new("streaming-demo");
    let sensor = app.node("sensor");
    app.timer(sensor, "sample", Nanos::from_millis(50), WorkModel::constant_millis(1.0))
        .publishes("/samples");
    let filter = app.node("filter");
    app.subscriber(filter, "smooth", "/samples", WorkModel::bounded_millis(2.0, 3.0, 6.0))
        .publishes("/smoothed");
    let mut world = WorldBuilder::new(2).seed(3).app(app.build()?).build()?;

    // Stream 10 simulated seconds as 500 ms segments. Each segment is fed
    // to the session and dropped; the session carries only derived state
    // (open instances, unmatched service interactions) across boundaries.
    let mut session = SynthesisSession::new();
    world.trace_segments(Nanos::from_secs(10), Nanos::from_millis(500), |segment| {
        session.feed_segment(segment);
        if (segment.index() + 1) % 5 == 0 {
            // The model is available at any point mid-run.
            let model = session.model();
            println!(
                "after {:>2} segments: {} vertices, {} edges, {} events seen, {} entries retained",
                segment.index() + 1,
                model.vertices().len(),
                model.edges().len(),
                session.events_fed(),
                session.retained_entries(),
            );
        }
    });

    let model = session.model();
    println!();
    println!(
        "final model: {} vertices / {} edges from {} events; peak watermark {} event-equivalents",
        model.vertices().len(),
        model.edges().len(),
        session.events_fed(),
        session.peak_watermark(),
    );
    for id in model.vertex_ids() {
        let v = model.vertex(id);
        println!(
            "  {:<22} {:<11} mACET {:>7}",
            v.node,
            v.kind.to_string(),
            v.stats.macet().map_or_else(|| "-".into(), |t| format!("{:.2} ms", t.as_millis_f64())),
        );
    }
    Ok(())
}
