//! The paper's headline case study: trace AVP LIDAR localization running
//! concurrently with SYN, synthesize the model, and report Table II-style
//! execution times plus the measured end-to-end latency of the
//! localization chain (the Sec. VII extension).
//!
//! Run with: `cargo run --example avp_localization [--release]`

use ros2_tms::analysis::end_to_end_latencies;
use ros2_tms::synthesis::{merge_dags, synthesize};
use ros2_tms::trace::Nanos;
use ros2_tms::workloads::{case_study_world, AVP_CALLBACKS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three runs of 20 s each (scaled down from the paper's 50 x 80 s;
    // the table2 bench binary runs the full configuration).
    let mut dags = Vec::new();
    let mut last_trace = None;
    for run in 0..3u64 {
        let mut world = case_study_world(run, 0.8 + 0.2 * run as f64);
        let trace = world.trace_run(Nanos::from_secs(20));
        dags.push(synthesize(&trace));
        last_trace = Some(trace);
    }
    let merged = merge_dags(dags);

    println!("AVP localization, measured over 3 runs x 20 s (paper values in parens):");
    println!("{:<6}{:<30}{:>16}{:>16}{:>16}", "CB", "node", "mBCET", "mACET", "mWCET");
    for (cb, node, b, a, w) in AVP_CALLBACKS {
        let vertex = merged
            .vertices()
            .iter()
            .filter(|v| v.node == node)
            .min_by_key(|v| {
                let target = Nanos::from_millis_f64(a).as_nanos() as i128;
                (v.stats.macet().map_or(i128::MAX, |m| m.as_nanos() as i128) - target).abs()
            })
            .expect("vertex present");
        let f = |x: Option<Nanos>, p: f64| {
            x.map(|n| format!("{:6.2} ({p:5.2})", n.as_millis_f64())).unwrap_or_default()
        };
        println!(
            "{:<6}{:<30}{:>16}{:>16}{:>16}",
            cb,
            node,
            f(vertex.stats.mbcet(), b),
            f(vertex.stats.macet(), a),
            f(vertex.stats.mwcet(), w)
        );
    }

    // End-to-end latency of the localization chain, measured by following
    // source timestamps through the trace.
    let trace = last_trace.expect("at least one run");
    let mut latencies =
        end_to_end_latencies(&trace, "/lidar_front/points_raw", "/localization/ndt_pose");
    latencies.sort_by_key(|m| m.latency);
    if !latencies.is_empty() {
        let min = latencies.first().expect("non-empty").latency;
        let max = latencies.last().expect("non-empty").latency;
        let avg = latencies.iter().map(|m| m.latency.as_millis_f64()).sum::<f64>()
            / latencies.len() as f64;
        println!();
        println!(
            "end-to-end latency /lidar_front/points_raw -> /localization/ndt_pose \
             over {} samples: min {:.1} ms, avg {avg:.1} ms, max {:.1} ms",
            latencies.len(),
            min.as_millis_f64(),
            max.as_millis_f64()
        );
    }
    Ok(())
}
