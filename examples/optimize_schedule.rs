//! Closing the loop of Sec. VII: synthesize the timing model of a loaded
//! system, derive a schedule configuration from it (chain-aware priorities
//! plus core isolation for heavy nodes), apply the configuration, and
//! measure the end-to-end latency improvement.
//!
//! Run with: `cargo run --release --example optimize_schedule`

use ros2_tms::analysis::{end_to_end_latencies, propose_schedule_for};
use ros2_tms::ros2::{AppSpec, WorldBuilder};
use ros2_tms::sched::Affinity;
use ros2_tms::synthesis::synthesize;
use ros2_tms::trace::{Cpu, Nanos, Priority};
use ros2_tms::workloads::{avp_localization_app, syn_app};

const CPUS: usize = 2; // deliberately constrained: contention matters
const SOURCE: &str = "/lidar_front/points_raw";
const SINK: &str = "/localization/ndt_pose";

fn measure(avp: AppSpec, syn: AppSpec, label: &str) -> Result<f64, Box<dyn std::error::Error>> {
    let mut world = WorldBuilder::new(CPUS).seed(11).app(avp).app(syn).build()?;
    let trace = world.trace_run(Nanos::from_secs(20));
    let lats = end_to_end_latencies(&trace, SOURCE, SINK);
    let avg = lats.iter().map(|m| m.latency.as_millis_f64()).sum::<f64>() / lats.len().max(1) as f64;
    let max = lats
        .iter()
        .map(|m| m.latency.as_millis_f64())
        .fold(0.0f64, f64::max);
    println!("{label:<11} e2e latency over {} samples: avg {avg:7.1} ms, max {max:7.1} ms", lats.len());
    Ok(avg)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Baseline: everything best-effort on a 3-core machine.
    let baseline = measure(avp_localization_app(), syn_app(2.5), "baseline:")?;

    // 2. Synthesize the model of the baseline run and derive a proposal.
    let mut world = WorldBuilder::new(CPUS)
        .seed(11)
        .app(avp_localization_app())
        .app(syn_app(2.5))
        .build()?;
    let window = Nanos::from_secs(20);
    let trace = world.trace_run(window);
    let dag = synthesize(&trace);
    let proposal =
        propose_schedule_for(&dag, window, CPUS, 0.25, Some("p2d_ndt_localizer_node"));
    println!();
    println!("critical chain: {}", proposal.critical_chain);
    for a in &proposal.assignments {
        if a.priority > 0 || a.dedicated_core.is_some() {
            println!(
                "  {:<32} prio {} core {:<9} (load {:.0}%)",
                a.node,
                a.priority,
                a.dedicated_core.map_or("shared".to_string(), |c| format!("cpu{c}")),
                a.load * 100.0
            );
        }
    }
    println!();

    // 3. Apply the proposal to the application descriptions and re-run.
    let mut avp = avp_localization_app();
    let mut syn = syn_app(2.5);
    for app in [&mut avp, &mut syn] {
        for node in &mut app.nodes {
            if let Some(a) = proposal.for_node(&node.name) {
                node.priority = Priority::new(a.priority);
                if let Some(core) = a.dedicated_core {
                    node.affinity = Affinity::only(Cpu::new(core as u16));
                }
            }
        }
    }
    let optimized = measure(avp, syn, "optimized:")?;

    println!();
    println!(
        "average end-to-end latency changed by {:+.1}%",
        (optimized - baseline) / baseline * 100.0
    );
    Ok(())
}
