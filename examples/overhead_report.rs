//! Tracing-cost report (Sec. VI overheads + Sec. III-B filtering): trace
//! volume, probe CPU usage, and the effect of in-kernel PID filtering.
//!
//! Run with: `cargo run --example overhead_report`

use ros2_tms::ros2::WorldBuilder;
use ros2_tms::trace::Nanos;
use ros2_tms::workloads::{avp_localization_app, syn_app};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let secs = 20u64;
    let mut world = WorldBuilder::new(12)
        .seed(3)
        .app(avp_localization_app())
        .app(syn_app(1.0))
        .background_load(Nanos::from_millis(3), Nanos::from_micros(300), Nanos::from_millis(1))
        .background_load(Nanos::from_millis(5), Nanos::from_micros(300), Nanos::from_millis(2))
        .build()?;
    let trace = world.trace_run(Nanos::from_secs(secs));

    println!("tracing SYN + AVP + background load for {secs}s:");
    println!(
        "  trace volume:   {:.2} MB ({} middleware + {} scheduler events)",
        world.trace_volume_bytes() as f64 / 1e6,
        trace.ros_events().len(),
        trace.sched_events().len()
    );
    let report = world.overhead_report();
    println!(
        "  probe cost:     {:.4} CPU cores avg, {:.2}% of the application load",
        report.avg_cores,
        report.frac_of_app_load * 100.0
    );
    let (seen, exported) = world.kernel_filter_stats();
    println!(
        "  PID filtering:  {seen} sched events seen in-kernel, {exported} exported ({:.1}x reduction)",
        seen as f64 / exported.max(1) as f64
    );
    Ok(())
}
