//! Runtime monitoring end to end: capture a healthy baseline from the
//! streaming pipeline, inject a fault mid-run, and watch the monitor's
//! alert stream catch it.
//!
//! Run with: `cargo run --release --example monitoring`

use ros2_tms::monitor::{Baseline, Monitor};
use ros2_tms::ros2::{AppBuilder, FaultKind, FaultPlan, FaultSpec, WorkModel, WorldBuilder};
use ros2_tms::synthesis::SynthesisSession;
use ros2_tms::trace::Nanos;

fn main() {
    // A small pipeline: a 50 ms camera timer feeding a detector.
    let mut app = AppBuilder::new("demo");
    let cam = app.node("camera");
    app.timer(cam, "grab", Nanos::from_millis(50), WorkModel::uniform_millis(0.5, 1.0))
        .publishes("/frames");
    let det = app.node("detector");
    app.subscriber(det, "detect", "/frames", WorkModel::uniform_millis(1.0, 2.0));
    let app = app.build().expect("valid app");

    // At t = 2 s the detector regresses to 6x its execution time.
    let plan: FaultPlan = [FaultSpec {
        callback: "detect".to_string(),
        at: Nanos::from_secs(2),
        kind: FaultKind::Slowdown { factor: 6.0 },
    }]
    .into_iter()
    .collect();

    let mut world =
        WorldBuilder::new(2).seed(42).app(app).fault_plan(plan).build().expect("world builds");

    // Stream the run as 500 ms segments: the first 2 segments are the
    // healthy phase the baseline is captured from, the rest are watched.
    let segment = Nanos::from_millis(500);
    let mut healthy = SynthesisSession::new();
    let mut monitor: Option<Monitor> = None;
    world.trace_segments(Nanos::from_secs(4), segment, |seg| {
        if seg.index() < 2 {
            healthy.feed_segment(seg);
            if seg.index() == 1 {
                let baseline = Baseline::from_dag(&healthy.model());
                println!(
                    "baseline: {} callback envelopes, topology fingerprint {:#x}",
                    baseline.len(),
                    baseline.fingerprint
                );
                monitor = Some(Monitor::new(baseline));
            }
            return;
        }
        // One fresh synthesis per window, sharing the learned node names.
        let mut window = SynthesisSession::with_names(healthy.names().clone());
        window.feed_segment(seg);
        let snapshot = window.model();
        for alert in monitor.as_mut().expect("baseline first").observe(&snapshot, segment) {
            println!("segment {}: {alert}", seg.index());
            println!("         as JSON: {}", alert.to_json());
        }
    });

    let m = monitor.expect("monitor ran");
    println!(
        "watched {} windows, {} alerts total",
        m.segments_observed(),
        m.alerts_emitted()
    );
    assert!(m.alerts_emitted() > 0, "the injected slowdown must be detected");
}
