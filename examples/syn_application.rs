//! Synthesizes the timing model of the SYN application (Fig. 3a) and
//! verifies the five structural scenarios of the paper's case study.
//!
//! Run with: `cargo run --example syn_application`

use ros2_tms::analysis::{enumerate_chains, latency_bound};
use ros2_tms::ros2::WorldBuilder;
use ros2_tms::synthesis::{synthesize, VertexKind};
use ros2_tms::trace::{CallbackKind, Nanos};
use ros2_tms::workloads::syn_app;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut world = WorldBuilder::new(4).seed(7).app(syn_app(1.0)).build()?;
    let trace = world.trace_run(Nanos::from_secs(10));
    let dag = synthesize(&trace);

    println!("SYN timing model: {} vertices, {} edges", dag.vertices().len(), dag.edges().len());

    // (i)-(v) of Sec. VI.
    let service_entries = dag
        .vertices()
        .iter()
        .filter(|v| v.kind == VertexKind::Callback(CallbackKind::Service))
        .count();
    let sv3_entries = dag
        .vertices()
        .iter()
        .filter(|v| {
            v.node == "syn_mixed" && v.kind == VertexKind::Callback(CallbackKind::Service)
        })
        .count();
    let or_marked = dag.vertices().iter().filter(|v| v.or_junction).count();
    let junctions = dag
        .vertices()
        .iter()
        .filter(|v| v.kind == VertexKind::AndJunction)
        .count();
    println!("service entries: {service_entries} (SV1 + SV2 + two per-caller SV3 = 4)");
    println!("SV3 vertices:    {sv3_entries} (one per caller)");
    println!("OR junctions:    {or_marked} (SC4 and SC5, fed by both T2 and T3)");
    println!("AND junctions:   {junctions} (the /f1 + /f2 synchronizer)");

    println!();
    println!("computation chains and their measured latency bounds:");
    for chain in enumerate_chains(&dag) {
        println!(
            "  [{:>8.2} ms] {}",
            latency_bound(&dag, &chain).as_millis_f64(),
            chain.describe(&dag)
        );
    }
    Ok(())
}
