//! Quickstart: describe a two-node ROS2 application, run it on the
//! simulated stack with the eBPF tracers attached, and synthesize its
//! timing model.
//!
//! Run with: `cargo run --example quickstart`

use ros2_tms::ros2::{AppBuilder, WorkModel, WorldBuilder};
use ros2_tms::synthesis::synthesize;
use ros2_tms::trace::Nanos;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the application, as a developer would against rclcpp:
    //    a 10 Hz camera driver and a detector subscribing to it.
    let mut app = AppBuilder::new("quickstart");
    let camera = app.node("camera_driver");
    app.timer(camera, "capture", Nanos::from_millis(100), WorkModel::constant_millis(2.0))
        .publishes("/image_raw");
    let detector = app.node("object_detector");
    app.subscriber(detector, "detect", "/image_raw", WorkModel::bounded_millis(8.0, 12.0, 20.0))
        .publishes("/detections");

    // 2. Put it on a 4-core machine with the three tracers of Fig. 1
    //    attached, and trace a 5-second run.
    let mut world = WorldBuilder::new(4).seed(42).app(app.build()?).build()?;
    let trace = world.trace_run(Nanos::from_secs(5));
    println!(
        "collected {} middleware events and {} scheduler events",
        trace.ros_events().len(),
        trace.sched_events().len()
    );

    // 3. Synthesize the timing model (Algorithms 1 + 2 and DAG synthesis).
    let dag = synthesize(&trace);
    println!();
    for id in dag.vertex_ids() {
        let v = dag.vertex(id);
        let period = v
            .period
            .macet()
            .map(|p| format!(", period ~{:.0} ms", p.as_millis_f64()))
            .unwrap_or_default();
        println!("task {}/{} — {}{}", v.node, v.kind, v.stats, period);
        for s in dag.successors(id) {
            println!("    -> {}", dag.vertex(s).node);
        }
    }

    // 4. Export for downstream tools.
    println!();
    println!("{}", dag.to_dot());
    Ok(())
}
