//! Facade crate for the `ros2-tms` workspace: trace-enabled timing model
//! synthesis for ROS2-based autonomous applications (DATE 2024 reproduction).
//!
//! Re-exports every workspace crate under a stable, discoverable path. See
//! the README for an architecture overview and `examples/` for runnable
//! demonstrations.

pub use rtms_analysis as analysis;
pub use rtms_bench as bench;
pub use rtms_core as synthesis;
pub use rtms_ebpf as ebpf;
pub use rtms_fleet as fleet;
pub use rtms_monitor as monitor;
pub use rtms_ros2 as ros2;
pub use rtms_sched as sched;
pub use rtms_trace as trace;
pub use rtms_workloads as workloads;
