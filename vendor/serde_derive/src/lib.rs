//! Minimal, dependency-free `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! implementations for the vendored `serde` facade.
//!
//! The container is offline, so the real `serde_derive` (and its `syn`/`quote`
//! dependency tree) is unavailable. This hand-rolled macro supports exactly
//! the shapes this workspace uses:
//!
//! - non-generic structs with named fields,
//! - tuple structs (newtypes serialize transparently, like real serde),
//! - non-generic enums with unit, newtype, tuple and struct variants
//!   (externally tagged, like real serde's default),
//! - the `#[serde(transparent)]` container attribute.
//!
//! Anything else (generics, lifetimes, other `#[serde(...)]` attributes)
//! produces a `compile_error!` so misuse is loud rather than silently wrong.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a container's fields.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parsed derive input.
enum Item {
    Struct { name: String, fields: Fields, transparent: bool },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Inspects one attribute bracket group. Returns `Ok(true)` for
/// `#[serde(transparent)]`, `Ok(false)` for non-serde attributes (doc
/// comments, `cfg`, …), and an error for any other `#[serde(...)]` so that
/// unsupported serde attributes fail loudly instead of being silently
/// ignored.
fn check_attr(group: &proc_macro::Group) -> Result<bool, String> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    match toks.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(inner)] if name.to_string() == "serde" => {
            let args: Vec<String> = inner.stream().into_iter().map(|t| t.to_string()).collect();
            if args.len() == 1 && args[0] == "transparent" {
                Ok(true)
            } else {
                Err(format!(
                    "#[serde({})] is not supported by the vendored serde derive (only `transparent`)",
                    args.join("")
                ))
            }
        }
        [TokenTree::Ident(name)] if name.to_string() == "serde" => {
            Err("bare #[serde] attribute is not supported by the vendored serde derive".into())
        }
        _ => Ok(false),
    }
}

fn validate(item: Item) -> Result<Item, String> {
    if let Item::Struct { name, fields, transparent: true } = &item {
        if !matches!(fields, Fields::Tuple(1)) {
            return Err(format!(
                "#[serde(transparent)] on `{name}` requires exactly one unnamed field in this vendored serde"
            ));
        }
    }
    Ok(item)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut transparent = false;

    // Leading attributes (doc comments, #[serde(...)], cfg_attr leftovers).
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    if check_attr(g)? {
                        transparent = true;
                    }
                    i += 2;
                } else {
                    return Err("unsupported attribute syntax".into());
                }
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.
                if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }

    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected container name, found `{other}`")),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("generic container `{name}` is not supported by the vendored serde derive"));
    }

    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                None => Fields::Unit,
                Some(other) => return Err(format!("unsupported struct body: `{other}`")),
            };
            validate(Item::Struct { name, fields, transparent })
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                _ => return Err("expected enum body".into()),
            };
            Ok(Item::Enum { name, variants: parse_variants(body)? })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

/// Splits a token stream on commas that sit outside `<...>` generic argument
/// lists (groups already hide their own contents, but angle brackets are
/// plain punctuation).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(Vec::new());
                continue;
            }
            _ => {}
        }
        out.last_mut().unwrap().push(tok);
    }
    if out.last().is_some_and(Vec::is_empty) {
        out.pop();
    }
    out
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for field in split_top_level(stream) {
        let mut j = 0;
        // Validate-and-skip field attributes and visibility.
        loop {
            match field.get(j) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = field.get(j + 1) {
                        check_attr(g)?;
                    }
                    j += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    j += 1;
                    if matches!(field.get(j), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        j += 1;
                    }
                }
                _ => break,
            }
        }
        match field.get(j) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, found `{other:?}`")),
        }
    }
    Ok(names)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    for var in split_top_level(stream) {
        let mut j = 0;
        while matches!(var.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = var.get(j + 1) {
                check_attr(g)?;
            }
            j += 2; // attribute: `#` + bracket group
        }
        let name = match var.get(j) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other:?}`")),
        };
        j += 1;
        let fields = match var.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            None => Fields::Unit,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!("explicit discriminants are not supported (variant `{name}`)"))
            }
            Some(other) => return Err(format!("unsupported variant body: `{other}`")),
        };
        variants.push((name, fields));
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields, .. } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                // Newtypes (and #[serde(transparent)]) serialize as the inner
                // value, matching real serde's default for newtype structs.
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
                }
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = Vec::new();
            for (v, fields) in variants {
                let arm = match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(String::from({v:?}))"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::variant({v:?}, ::serde::Serialize::to_value(__f0))"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::variant({v:?}, ::serde::Value::Array(vec![{}]))",
                            binds.join(", "),
                            elems.join(", ")
                        )
                    }
                    Fields::Named(names) => {
                        let binds = names.join(", ");
                        let pairs: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!("(String::from({f:?}), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::variant({v:?}, ::serde::Value::Object(vec![{}]))",
                            pairs.join(", ")
                        )
                    }
                };
                arms.push(arm);
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields, .. } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                        .collect();
                    format!(
                        "let __arr = ::serde::expect_array(__v, {n})?;\n\
                         Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::expect_field(__obj, {f:?})?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __obj = ::serde::expect_object(__v)?;\n\
                         Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for (v, fields) in variants {
                match fields {
                    Fields::Unit => {
                        unit_arms.push(format!("{v:?} => Ok({name}::{v})"));
                    }
                    Fields::Tuple(1) => data_arms.push(format!(
                        "{v:?} => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?))"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__arr[{k}])?"))
                            .collect();
                        data_arms.push(format!(
                            "{v:?} => {{\n\
                                 let __arr = ::serde::expect_array(__inner, {n})?;\n\
                                 Ok({name}::{v}({}))\n\
                             }}",
                            elems.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let inits: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(::serde::expect_field(__obj, {f:?})?)?"
                                )
                            })
                            .collect();
                        data_arms.push(format!(
                            "{v:?} => {{\n\
                                 let __obj = ::serde::expect_object(__inner)?;\n\
                                 Ok({name}::{v} {{ {} }})\n\
                             }}",
                            inits.join(", ")
                        ));
                    }
                }
            }
            unit_arms.push(format!(
                "__other => Err(::serde::DeError::unknown_variant({name:?}, __other))"
            ));
            data_arms.push(format!(
                "__other => Err(::serde::DeError::unknown_variant({name:?}, __other))"
            ));
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{ {unit} }},\n\
                             ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__pairs[0];\n\
                                 match __tag.as_str() {{ {data} }}\n\
                             }}\n\
                             __other => Err(::serde::DeError::expected(\"externally tagged enum\", __other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join(",\n"),
                data = data_arms.join(",\n")
            )
        }
    }
}
