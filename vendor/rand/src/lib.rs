//! Vendored minimal stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open and inclusive integer/float ranges —
//! everything this workspace uses. The generator is a fixed xoshiro256++
//! so simulations are deterministic for a given seed on every platform.

use std::ops::{Range, RangeInclusive};

/// Core random source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a reproducible generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool called with p = {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` below `bound` via Lemire's multiply-shift with rejection.
fn u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end - self.start;
                assert!(
                    span.is_finite(),
                    "range span overflows {} — not supported by the vendored rand",
                    stringify!($t)
                );
                // Rejection loop: the multiply can round up to the excluded
                // end bound (esp. for f32); `start` is always in range, so
                // this terminates with probability 1.
                loop {
                    let v = self.start + (unit_f64(rng.next_u64()) as $t) * span;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = end - start;
                assert!(
                    span.is_finite(),
                    "range span overflows {} — not supported by the vendored rand",
                    stringify!($t)
                );
                start + (unit_f64(rng.next_u64()) as $t) * span
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as rand does.
            let mut x = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                *slot = z ^ (z >> 31);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5i64..=7);
            assert!((5..=7).contains(&y));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }
}
