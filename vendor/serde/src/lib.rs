//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build container has no network access, so the real serde cannot be
//! fetched. This facade keeps the workspace source-compatible with the serde
//! API surface it actually uses (`derive(Serialize, Deserialize)`,
//! `#[serde(transparent)]`, and `serde_json::{to_string, from_str}`) by
//! routing everything through a simple JSON-shaped [`Value`] tree instead of
//! serde's visitor machinery.
//!
//! Semantics intentionally match real serde where the workspace can observe
//! them: newtype structs and `#[serde(transparent)]` serialize as their inner
//! value, enums are externally tagged, structs become JSON objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// A JSON-shaped value tree — the interchange format between the derive
/// macros and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral JSON number (covers the full `u64`/`i64` ranges).
    Int(i128),
    /// Non-integral JSON number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, with insertion order preserved.
    Object(Vec<(String, Value)>),
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// Rust type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Type mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        DeError(format!("expected {what}, got {}", kind_name(got)))
    }

    /// Unknown enum variant error.
    pub fn unknown_variant(enum_name: &str, variant: &str) -> Self {
        DeError(format!("unknown variant `{variant}` for enum `{enum_name}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::Int(_) | Value::Float(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` to the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Converts the interchange tree back into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- helpers used by the generated code ----

/// Wraps a variant's payload in the externally-tagged `{name: value}` form.
pub fn variant(name: &str, value: Value) -> Value {
    Value::Object(vec![(name.to_string(), value)])
}

/// Expects an object, returning its fields.
pub fn expect_object(v: &Value) -> Result<&[(String, Value)], DeError> {
    match v {
        Value::Object(pairs) => Ok(pairs),
        other => Err(DeError::expected("object", other)),
    }
}

/// Expects an array of exactly `len` elements.
pub fn expect_array(v: &Value, len: usize) -> Result<&[Value], DeError> {
    match v {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(DeError(format!(
            "expected array of {len} elements, got {}",
            items.len()
        ))),
        other => Err(DeError::expected("array", other)),
    }
}

/// Looks up a struct field by name.
pub fn expect_field<'a>(obj: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

// ---- primitive impls ----

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError(format!("number {i} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("boolean", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Deserialize for std::sync::Arc<str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(Into::into)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Deserialize for std::rc::Rc<str> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        String::from_value(v).map(Into::into)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($len:literal, $(($t:ident, $idx:tt)),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = expect_array(v, $len)?;
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1, (A, 0));
impl_tuple!(2, (A, 0), (B, 1));
impl_tuple!(3, (A, 0), (B, 1), (C, 2));
impl_tuple!(4, (A, 0), (B, 1), (C, 2), (D, 3));

// Maps serialize as an array of `[key, value]` pairs so that non-string key
// types round-trip; only round-trip fidelity is observable in this workspace.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S> Deserialize for HashMap<K, V, S>
where
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|pair| {
                    let kv = expect_array(pair, 2)?;
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                })
                .collect(),
            other => Err(DeError::expected("array of pairs", other)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|pair| {
                    let kv = expect_array(pair, 2)?;
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                })
                .collect(),
            other => Err(DeError::expected("array of pairs", other)),
        }
    }
}
