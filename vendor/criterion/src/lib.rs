//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Implements enough of the criterion 0.5 API for the workspace's benches to
//! compile and run offline: [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a short warm-up followed by timed
//! batches, reporting the mean wall-clock time per iteration — with none of
//! real criterion's statistics, plotting, or baseline storage.

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into() }
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&id.to_string(), &mut f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count (accepted and ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measured throughput (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), &mut f);
    }

    /// Benchmarks a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&format!("{}/{}", self.name, id), &mut wrapped);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A two-part benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter description.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{function_name}/{parameter}") }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Declared throughput of a benchmark (accepted and ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, recording the mean wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and a first estimate of the per-call cost.
        let warmup_start = Instant::now();
        black_box(routine());
        let estimate = warmup_start.elapsed().max(Duration::from_nanos(1));

        // Aim for a ~100 ms measurement window, capped for slow routines.
        let iters = (Duration::from_millis(100).as_nanos() / estimate.as_nanos())
            .clamp(1, 10_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = Some(start.elapsed() / iters);
    }
}

#[doc(hidden)]
pub fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { mean: None };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!("{id:<60} {mean:>12.2?}/iter"),
        None => println!("{id:<60} (no measurement: Bencher::iter never called)"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
