//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Implements exactly the API this workspace uses — [`to_string`],
//! [`from_str`], and [`Error`] — over the [`serde::Value`] interchange tree.
//! The emitted text is standard JSON: newtype structs appear as their inner
//! value, enums are externally tagged, and map-typed fields appear as arrays
//! of `[key, value]` pairs (see the vendored `serde` crate).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Infallible for the value model this facade supports; the `Result` only
/// mirrors the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns an error if `s` is not valid JSON or does not match the target
/// type's shape.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's shortest round-trip formatting; force a decimal
                // point so the value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum container nesting, as in real serde_json: prevents adversarial or
/// corrupt input from overflowing the stack via recursive descent.
const MAX_DEPTH: usize = 128;

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0, depth: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".into())),
        }
    }

    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error(format!("recursion limit exceeded ({MAX_DEPTH} levels)")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn hex4(&self, at: usize) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error("invalid \\u escape".into()))?,
            16,
        )
        .map_err(|_| Error("invalid \\u escape".into()))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a low surrogate escape must follow.
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return Err(Error("unpaired surrogate in \\u escape".into()));
                                }
                                let lo = self.hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate in \\u escape".into()));
                                }
                                self.pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u codepoint".into()))?,
                            );
                        }
                        _ => return Err(Error(format!("invalid escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 code point, sized from its leading
                    // byte — validating only this character keeps string
                    // parsing linear in the document size.
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error("invalid UTF-8".into())),
                    };
                    let slice = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| Error("truncated UTF-8 sequence".into()))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    out.push_str(s);
                    self.pos += len;
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
        let f: f64 = from_str(&to_string(&1.5f64).unwrap()).unwrap();
        assert_eq!(f, 1.5);
    }

    #[test]
    fn round_trip_containers() {
        let v = vec![(Some("x".to_string()), 3u32), (None, 4u32)];
        let json = to_string(&v).unwrap();
        let back: Vec<(Option<String>, u32)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<bool>("\"x\"").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        // Escaped non-BMP character (as emitted by e.g. Python's json.dumps).
        assert_eq!(from_str::<String>(r#""\ud83d\ude00""#).unwrap(), "\u{1F600}");
        // Raw UTF-8 passthrough and BMP escapes still work.
        assert_eq!(from_str::<String>(r#""\u00e9 caf\u00e9""#).unwrap(), "\u{e9} caf\u{e9}");
        // Unpaired or malformed surrogates are errors, not panics.
        assert!(from_str::<String>(r#""\ud83d""#).is_err());
        assert!(from_str::<String>(r#""\ud83dA""#).is_err());
        assert!(from_str::<String>(r#""\ud83d\u0041""#).is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        assert!(from_str::<Vec<u64>>(&deep).is_err());
        // Nesting within the limit still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(super::parse(&ok).is_ok());
    }
}
