//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Offline builds cannot fetch the real proptest, so this crate implements
//! the subset the workspace's property tests use: the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_flat_map`, tuple and range strategies, a
//! regex-subset string strategy, [`collection::vec`], [`Just`], `any::<T>()`,
//! and the [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed (derived from the test name), and failing inputs are
//! not shrunk — the panic message reports the raw failing case number.

pub mod collection;
pub mod strategy;

pub use strategy::{Just, Strategy};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration; only `cases` is supported.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Builds the deterministic RNG for one test function.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name keeps distinct tests on distinct streams
    // while staying reproducible across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Types with a canonical strategy, used by [`prelude::any`].
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

/// The glob import the tests start from: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::ProptestConfig;

    use crate::strategy::AnyStrategy;

    /// The canonical strategy for `T`.
    pub fn any<T: crate::Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy::new()
    }
}

/// Runs `cases` iterations of one property. Used by [`proptest!`].
#[doc(hidden)]
pub fn __run_cases(config: &ProptestConfig, name: &str, mut case: impl FnMut(&mut StdRng)) {
    let mut rng = test_rng(name);
    for i in 0..config.cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = result {
            eprintln!("proptest: property `{name}` failed on case {i} (deterministic seed; re-run reproduces it)");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::__run_cases(&config, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                    $body
                });
            }
        )*
    };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::__boxed($strat)),+])
    };
}

/// Asserts a condition inside a property.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
