//! The [`Strategy`] trait and the combinators the workspace's tests use.

use crate::Arbitrary;
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply produces a value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// Boxes a strategy, unifying heterogeneous strategies in [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
#[doc(hidden)]
pub fn __boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<U, S: Strategy, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Strategy produced by [`crate::prelude::any`].
pub struct AnyStrategy<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> AnyStrategy<T> {
    pub(crate) fn new() -> Self {
        AnyStrategy { _marker: PhantomData }
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String literals act as regex-subset strategies, as in real proptest.
///
/// Supported syntax: literal characters and character classes `[...]`
/// (with `a-z` ranges), each optionally followed by `{n}` or `{m,n}`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug)]
enum PatElem {
    Class(Vec<char>),
    Literal(char),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut pending: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => break,
            '-' if pending.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let start = pending.take().unwrap();
                let end = chars.next().unwrap();
                for code in start as u32..=end as u32 {
                    if let Some(ch) = char::from_u32(code) {
                        set.push(ch);
                    }
                }
            }
            c => {
                if let Some(p) = pending.take() {
                    set.push(p);
                }
                pending = Some(c);
            }
        }
    }
    if let Some(p) = pending {
        set.push(p);
    }
    assert!(!set.is_empty(), "empty character class in pattern");
    set
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut spec = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        spec.push(c);
    }
    match spec.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("bad repetition lower bound"),
            hi.trim().parse().expect("bad repetition upper bound"),
        ),
        None => {
            let n = spec.trim().parse().expect("bad repetition count");
            (n, n)
        }
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    let mut chars = pattern.chars().peekable();
    let mut out = String::new();
    while let Some(c) = chars.next() {
        let elem = match c {
            '[' => PatElem::Class(parse_class(&mut chars)),
            '\\' => PatElem::Literal(chars.next().expect("dangling escape in pattern")),
            c => PatElem::Literal(c),
        };
        let (lo, hi) = parse_repeat(&mut chars);
        let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
        for _ in 0..count {
            match &elem {
                PatElem::Class(set) => {
                    out.push(set[rng.gen_range(0..set.len())]);
                }
                PatElem::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn pattern_strategy_respects_class_and_length() {
        let mut rng = test_rng("pattern");
        for _ in 0..200 {
            let s = "[a-z/]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c == '/'));
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let s = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = test_rng("oneof");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn flat_map_threads_intermediate_value() {
        let s = (2usize..5).prop_flat_map(|n| crate::collection::vec(0u64..10, n));
        let mut rng = test_rng("flat_map");
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
