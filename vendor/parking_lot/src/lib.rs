//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()`/`read()`/`write()` returning guards directly). A poisoned std
//! lock — only possible after a panic while holding the guard — is treated
//! as still usable, matching parking_lot's behavior of not tracking poison.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Borrows the inner value directly: exclusive access is proven by the
    /// `&mut` receiver, so no locking happens.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}
